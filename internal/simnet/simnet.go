// Package simnet is a deterministic discrete-event network simulator.
// Nodes push their outbound envelopes into the network's Sink as handlers
// run; envelopes are charged through the bandwidth model synchronously in
// emission order, so identical seeds yield identical runs. It is
// the substrate substituting for the paper's 600-instance EC2 testbed (see
// DESIGN.md §1): every byte a replica sends serializes through the sender's
// egress pipe and the receiver's ingress pipe at configured capacities, plus
// propagation latency, so bandwidth contention — the phenomenon the paper's
// scaling experiments measure — is modeled faithfully while hundreds of
// replicas run in one process in virtual time.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"leopard/internal/metrics"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// Config describes the simulated network.
type Config struct {
	// EgressBps / IngressBps are the per-replica link capacities in bits
	// per second. The paper's testbed NICs are 9.8 Gbps; the scaling-up
	// experiment throttles 20–200 Mbps.
	EgressBps  float64
	IngressBps float64
	// Latency is the one-way propagation delay between any two replicas.
	Latency time.Duration
	// Jitter adds up to this much uniform random delay per message.
	Jitter time.Duration
	// ProcBps models the replica's request-processing rate (CPU): every
	// received byte passes through a serial processing stage at this
	// rate after the ingress pipe. The paper's systems peak around 1e5
	// requests/sec on 4-vCPU instances — far below NIC capacity — so the
	// scaling experiments are processing-bound at small n and bandwidth-
	// bound at large n. Zero disables the stage.
	ProcBps float64
	// HalfDuplex splits a single link capacity of EgressBps fairly between
	// the two directions: each runs at EgressBps/2 (IngressBps is
	// ignored). The Fig. 10 scaling-up experiment throttles replicas this
	// way, matching the paper's analysis that counts send+receive against
	// one capacity C (hence its γ -> 1/2 bound).
	HalfDuplex bool
	// TickInterval is how often node Tick handlers fire. Zero disables.
	TickInterval time.Duration
	// Seed feeds the deterministic RNG used for jitter.
	Seed int64
	// DisableLanePriority makes control-lane traffic queue FIFO behind
	// bulk on the egress/ingress pipes instead of preempting it — the
	// single-queue baseline for lane A/B experiments (the simulated mirror
	// of tcp.Config.DisableLanes).
	DisableLanePriority bool
	// Codec, when set, enables wire fidelity: every message is encoded to
	// a fresh frame and decoded again per receiver before delivery, exactly
	// as the TCP transport would, instead of being delivered by reference.
	// This exercises the real (zero-copy) decode path and the canonical-
	// encoding checks under full protocol workloads; messages that fail to
	// round-trip are dropped, as a real transport would drop them. Nil
	// keeps reference delivery (faster, the default for large simulations).
	Codec transport.Codec
}

// DefaultConfig mirrors the paper's single-datacenter EC2 setup.
func DefaultConfig() Config {
	return Config{
		EgressBps:    9.8e9,
		IngressBps:   9.8e9,
		Latency:      500 * time.Microsecond,
		Jitter:       0,
		TickInterval: 5 * time.Millisecond,
		Seed:         1,
	}
}

// Filter can drop or hold messages between a pair of replicas, modeling
// Byzantine dissemination (selective attacks) and crash faults.
// Return false to drop the message silently.
type Filter func(now time.Duration, from, to types.ReplicaID, msg transport.Message) bool

type eventKind uint8

const (
	evDeliver eventKind = iota + 1
	evTick
	evCall
)

type event struct {
	at   time.Duration
	seq  uint64 // tie-break for determinism
	kind eventKind
	from types.ReplicaID
	to   types.ReplicaID
	msg  transport.Message
	fn   func(now time.Duration)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Network simulates message exchange among a fixed set of nodes.
// Not safe for concurrent use: Run drives everything on one goroutine.
type Network struct {
	cfg     Config
	nodes   []transport.Node
	egress  []time.Duration // per-replica egress pipe free-at time
	ingress []time.Duration
	proc    []time.Duration // per-replica processing stage free-at time
	stats   []metrics.Bandwidth
	filter  Filter
	crashed []bool

	queue eventHeap
	seq   uint64
	now   time.Duration
	rng   *rand.Rand

	// snk is the single reusable Sink handed to node handlers; only its
	// sender id changes per event. Envelopes pushed into it are dispatched
	// synchronously in emission order with a monotonically increasing
	// sequence tie-break, so identical seeds yield identical runs — the
	// deterministic-Sink property TestDeterministicStatsAcrossRuns asserts
	// at the protocol level.
	snk netSink
}

// netSink routes a node's pushed envelopes into the bandwidth model on
// behalf of the current sender. The Network is single-threaded: exactly one
// node handler runs at a time, so one shared sink suffices.
type netSink struct {
	net  *Network
	from types.ReplicaID
}

// Send implements transport.Sink.
func (s *netSink) Send(env transport.Envelope) { s.net.dispatch(s.from, env) }

// Broadcast implements transport.Sink.
func (s *netSink) Broadcast(msg transport.Message) {
	s.net.dispatch(s.from, transport.Envelope{Broadcast: true, Msg: msg})
}

// sinkFor points the shared sink at the given sender.
func (n *Network) sinkFor(id types.ReplicaID) *netSink {
	n.snk.from = id
	return &n.snk
}

// New builds a network over the given nodes; node i must have ID i.
func New(cfg Config, nodes []transport.Node) (*Network, error) {
	if cfg.EgressBps <= 0 || (cfg.IngressBps <= 0 && !cfg.HalfDuplex) {
		return nil, fmt.Errorf("simnet: capacities must be positive")
	}
	for i, n := range nodes {
		if int(n.ID()) != i {
			return nil, fmt.Errorf("simnet: node at slot %d reports id %d", i, n.ID())
		}
	}
	n := &Network{
		cfg:     cfg,
		nodes:   nodes,
		egress:  make([]time.Duration, len(nodes)),
		ingress: make([]time.Duration, len(nodes)),
		proc:    make([]time.Duration, len(nodes)),
		stats:   make([]metrics.Bandwidth, len(nodes)),
		crashed: make([]bool, len(nodes)),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	n.snk.net = n
	return n, nil
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// SetFilter installs a message filter (nil clears it).
func (n *Network) SetFilter(f Filter) { n.filter = f }

// Crash stops delivering events to a replica; its in-flight output is lost.
func (n *Network) Crash(id types.ReplicaID) { n.crashed[id] = true }

// Restart resumes delivery to a crashed replica (its state is as it was).
func (n *Network) Restart(id types.ReplicaID) { n.crashed[id] = false }

// Stats returns the bandwidth accounting for a replica. The pointer stays
// valid across Run calls; callers must not mutate it.
func (n *Network) Stats(id types.ReplicaID) *metrics.Bandwidth { return &n.stats[id] }

// ResetStats clears bandwidth accounting (e.g. after warmup).
func (n *Network) ResetStats() {
	for i := range n.stats {
		n.stats[i] = metrics.Bandwidth{}
	}
}

func (n *Network) push(e *event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.queue, e)
}

// ScheduleCall runs fn at the given virtual time (e.g. fault injection).
func (n *Network) ScheduleCall(at time.Duration, fn func(now time.Duration)) {
	if at < n.now {
		at = n.now
	}
	n.push(&event{at: at, kind: evCall, fn: fn})
}

// transmissionDelay returns how long size bytes occupy a pipe of rate bps.
func transmissionDelay(size int, bps float64) time.Duration {
	return time.Duration(float64(size) * 8 / bps * float64(time.Second))
}

// occupy charges d of transmission time on pipe[idx], starting no earlier
// than earliest, and returns the completion time. Bulk-lane traffic queues
// FIFO; control-lane traffic (preempt) models priority queuing: real stacks
// interleave small control flows with bulk transfers instead of parking
// them behind megabytes of payload, so control frames transmit immediately
// while their bytes still count against the pipe's capacity (they are <1%
// of traffic, Table III). This is the simulated mirror of the TCP runtime's
// strict control-over-bulk lane scheduler.
func occupy(pipe []time.Duration, idx int, earliest, d time.Duration, preempt bool) time.Duration {
	if preempt {
		if pipe[idx] < earliest {
			pipe[idx] = earliest
		}
		pipe[idx] += d
		return earliest + d
	}
	start := pipe[idx]
	if start < earliest {
		start = earliest
	}
	done := start + d
	pipe[idx] = done
	return done
}

// send routes one unicast message through the bandwidth model. The lane
// decides pipe scheduling: control-lane messages preempt queued bulk on
// both the egress and ingress pipes, bulk queues FIFO.
func (n *Network) send(from, to types.ReplicaID, msg transport.Message, lane transport.Lane) {
	if int(to) >= len(n.nodes) || from == to {
		return
	}
	if n.cfg.Codec != nil {
		// Wire fidelity: round-trip through the codec per receiver. Each
		// Encode allocates a fresh frame, so the Decode below owns it —
		// the same ownership transfer the TCP read loop performs — and the
		// receiver gets an independent message rather than an alias of the
		// sender's.
		frame, err := n.cfg.Codec.Encode(msg)
		if err != nil {
			return // unencodable: drop, as the TCP dispatch path does
		}
		decoded, err := n.cfg.Codec.Decode(frame)
		if err != nil {
			return // protocol violation on the wire: drop
		}
		msg = decoded
	}
	size := msg.WireSize()
	n.stats[from].AddSent(msg.Class(), size)
	preempt := lane == transport.LaneControl && !n.cfg.DisableLanePriority

	// Half duplex splits one link capacity between the directions.
	txRate, rxRate := n.cfg.EgressBps, n.cfg.IngressBps
	if n.cfg.HalfDuplex {
		txRate = n.cfg.EgressBps / 2
		rxRate = txRate
	}

	// Egress: serialize through the sender's pipe.
	txDone := occupy(n.egress, int(from), n.now, transmissionDelay(size, txRate), preempt)

	// Propagation.
	arrive := txDone + n.cfg.Latency
	if n.cfg.Jitter > 0 {
		arrive += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}

	// Ingress: serialize through the receiver's pipe.
	rxDone := occupy(n.ingress, int(to), arrive, transmissionDelay(size, rxRate), preempt)

	// Processing: the receiver's CPU stage. Only payload-bearing bulk
	// classes are charged — deserializing and hashing request bytes is
	// what saturates the paper's 4-vCPU replicas, while votes and proofs
	// are small and handled out-of-band (separate connections/cores), so
	// modeling them through the same FIFO would add a priority inversion
	// real systems do not have. This keys on the message itself (IsBulk),
	// not the scheduling lane: re-laning a bulk message onto the control
	// lane expedites its transmission but cannot waive its CPU cost.
	deliverAt := rxDone
	if n.cfg.ProcBps > 0 && transport.IsBulk(msg) {
		pStart := n.proc[to]
		if pStart < rxDone {
			pStart = rxDone
		}
		deliverAt = pStart + transmissionDelay(size, n.cfg.ProcBps)
		n.proc[to] = deliverAt
	}

	n.push(&event{at: deliverAt, kind: evDeliver, from: from, to: to, msg: msg})
}

// dispatch fans an envelope out into unicast sends, applying the filter.
func (n *Network) dispatch(from types.ReplicaID, env transport.Envelope) {
	if env.Msg == nil {
		return
	}
	lane := env.EffectiveLane()
	deliverTo := func(to types.ReplicaID) {
		if n.filter != nil && !n.filter(n.now, from, to, env.Msg) {
			return
		}
		n.send(from, to, env.Msg, lane)
	}
	if env.Broadcast {
		for id := range n.nodes {
			if types.ReplicaID(id) != from {
				deliverTo(types.ReplicaID(id))
			}
		}
		return
	}
	deliverTo(env.To)
}

// Start initializes all nodes and schedules ticking. Call once before Run.
func (n *Network) Start() {
	for _, node := range n.nodes {
		node.Start(n.now, n.sinkFor(node.ID()))
	}
	if n.cfg.TickInterval > 0 {
		n.scheduleTick(n.cfg.TickInterval)
	}
}

func (n *Network) scheduleTick(at time.Duration) {
	n.push(&event{at: at, kind: evTick})
}

// Run advances virtual time until the given deadline, processing all events.
func (n *Network) Run(until time.Duration) {
	for n.queue.Len() > 0 {
		e := n.queue[0]
		if e.at > until {
			break
		}
		heap.Pop(&n.queue)
		n.now = e.at
		switch e.kind {
		case evDeliver:
			if n.crashed[e.to] {
				continue
			}
			n.stats[e.to].AddReceived(e.msg.Class(), e.msg.WireSize())
			n.nodes[e.to].Deliver(n.now, e.from, e.msg, n.sinkFor(e.to))
		case evTick:
			for _, node := range n.nodes {
				if n.crashed[node.ID()] {
					continue
				}
				node.Tick(n.now, n.sinkFor(node.ID()))
			}
			// Always reschedule; if the next tick lies beyond the
			// deadline it stays queued for a later Run call.
			n.scheduleTick(n.now + n.cfg.TickInterval)
		case evCall:
			e.fn(n.now)
		}
	}
	if n.now < until {
		n.now = until
	}
}

// PipeLag reports how far each of a replica's pipes is booked beyond the
// current virtual time: (egress, ingress, processing). Diagnostic helper
// for experiments and tests.
func (n *Network) PipeLag(id types.ReplicaID) (tx, rx, proc time.Duration) {
	lag := func(at time.Duration) time.Duration {
		if at <= n.now {
			return 0
		}
		return at - n.now
	}
	return lag(n.egress[id]), lag(n.ingress[id]), lag(n.proc[id])
}
