// Package simnet is a deterministic discrete-event network simulator.
// Nodes push their outbound envelopes into the network's Sink as handlers
// run; envelopes are charged through the bandwidth model synchronously in
// emission order, so identical seeds yield identical runs. It is
// the substrate substituting for the paper's 600-instance EC2 testbed (see
// DESIGN.md §1): every byte a replica sends serializes through the sender's
// egress pipe and the receiver's ingress pipe at configured capacities, plus
// propagation latency, so bandwidth contention — the phenomenon the paper's
// scaling experiments measure — is modeled faithfully while hundreds of
// replicas run in one process in virtual time.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"leopard/internal/metrics"
	"leopard/internal/obs"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// Config describes the simulated network.
type Config struct {
	// EgressBps / IngressBps are the per-replica link capacities in bits
	// per second. The paper's testbed NICs are 9.8 Gbps; the scaling-up
	// experiment throttles 20–200 Mbps.
	EgressBps  float64
	IngressBps float64
	// Latency is the one-way propagation delay between any two replicas.
	Latency time.Duration
	// Jitter adds up to this much uniform random delay per message.
	Jitter time.Duration
	// ProcBps models the replica's request-processing rate (CPU): every
	// received byte passes through a serial processing stage at this
	// rate after the ingress pipe. The paper's systems peak around 1e5
	// requests/sec on 4-vCPU instances — far below NIC capacity — so the
	// scaling experiments are processing-bound at small n and bandwidth-
	// bound at large n. Zero disables the stage.
	ProcBps float64
	// VoteProcCost, when positive, charges the receiver's serial CPU stage
	// this much per vote/proof-class message (threshold-share verification
	// and proof combination). The default zero keeps the legacy model where
	// only bulk bytes cost CPU. The rotate scenario sets it to expose the
	// fixed leader's vote-aggregation ceiling — a fixed leader absorbs
	// ~2(n-1) votes plus the ready traffic for every proposal through one
	// serial stage, while rotation spreads that across all replicas.
	VoteProcCost time.Duration
	// HalfDuplex splits a single link capacity of EgressBps fairly between
	// the two directions: each runs at EgressBps/2 (IngressBps is
	// ignored). The Fig. 10 scaling-up experiment throttles replicas this
	// way, matching the paper's analysis that counts send+receive against
	// one capacity C (hence its γ -> 1/2 bound).
	HalfDuplex bool
	// TickInterval is how often node Tick handlers fire. Zero disables.
	TickInterval time.Duration
	// Seed feeds the deterministic RNG used for jitter.
	Seed int64
	// DisableLanePriority makes control-lane traffic queue FIFO behind
	// bulk on the egress/ingress pipes instead of preempting it — the
	// single-queue baseline for lane A/B experiments (the simulated mirror
	// of tcp.Config.DisableLanes).
	DisableLanePriority bool
	// Bulk selects the bulk-lane model: the legacy unbounded pipes
	// (BulkPipes, the default), a bounded per-pair queue that drops on
	// overflow (BulkDrop, the PR 3 TCP baseline), or chunked streaming
	// with credit-based per-peer flow control (BulkCredit, the current
	// TCP runtime). See BulkModel.
	Bulk BulkModel
	// Stream tunes the BulkDrop queue bound (ParkBudget) and the
	// BulkCredit chunking/credit parameters; zero fields take the
	// transport package defaults. It is the same StreamConfig the TCP
	// runtime uses, so a simulated sender splits and parks exactly where
	// the real one would.
	Stream transport.StreamConfig
	// IngressBpsPer overrides IngressBps per replica when non-nil (zero
	// entries keep the global rate). Used to model a slow receiver, e.g.
	// the stream-scenario follower whose NIC lags the cluster. Ignored
	// under HalfDuplex.
	IngressBpsPer []float64
	// Codec, when set, enables wire fidelity: every message is encoded to
	// a fresh frame and decoded again per receiver before delivery, exactly
	// as the TCP transport would, instead of being delivered by reference.
	// This exercises the real (zero-copy) decode path and the canonical-
	// encoding checks under full protocol workloads; messages that fail to
	// round-trip are dropped, as a real transport would drop them. Nil
	// keeps reference delivery (faster, the default for large simulations).
	Codec transport.Codec
}

// DefaultConfig mirrors the paper's single-datacenter EC2 setup.
func DefaultConfig() Config {
	return Config{
		EgressBps:    9.8e9,
		IngressBps:   9.8e9,
		Latency:      500 * time.Microsecond,
		Jitter:       0,
		TickInterval: 5 * time.Millisecond,
		Seed:         1,
	}
}

// Filter can drop or hold messages between a pair of replicas, modeling
// Byzantine dissemination (selective attacks) and crash faults.
// Return false to drop the message silently.
type Filter func(now time.Duration, from, to types.ReplicaID, msg transport.Message) bool

// BulkModel selects how the simulator moves bulk-lane traffic.
type BulkModel uint8

const (
	// BulkPipes is the legacy model: a bulk message books the sender's
	// egress and the receiver's ingress pipes immediately and queues
	// without bound. No drops, no flow control, no observable queue.
	BulkPipes BulkModel = iota
	// BulkDrop models the PR 3 TCP runtime: per (sender, receiver) pair
	// the bulk lane is a bounded byte queue (Stream.ParkBudget) drained
	// one whole frame at a time at the pace the receiver absorbs them;
	// a frame arriving at a full queue is dropped (the protocol recovers
	// via retrieval). This is the drop-on-overflow baseline the stream
	// scenario compares against.
	BulkDrop
	// BulkCredit models the streaming TCP runtime: bulk frames become
	// streams, split into chunks (Stream.ChunkLen) and interleaved
	// round-robin per pair; each chunk debits the pair's credit window
	// and the receiver grants consumed bytes back as control-lane
	// CreditMsg traffic. At zero credit the flow parks; the park budget
	// evicts the oldest unstarted streams (the only loss path).
	BulkCredit
)

type eventKind uint8

const (
	evDeliver eventKind = iota + 1
	evTick
	evCall
	evChunk  // one bulk chunk finished its ingress transfer
	evCredit // a credit grant reached the sender
)

type event struct {
	at   time.Duration
	seq  uint64 // tie-break for determinism
	kind eventKind
	from types.ReplicaID
	to   types.ReplicaID
	msg  transport.Message
	fn   func(now time.Duration)
	flow *flow
	n    int64 // chunk payload / granted bytes
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Network simulates message exchange among a fixed set of nodes.
// Not safe for concurrent use: Run drives everything on one goroutine.
type Network struct {
	cfg     Config
	nodes   []transport.Node
	egress  []time.Duration // per-replica egress pipe free-at time
	ingress []time.Duration
	proc    []time.Duration // per-replica processing stage free-at time
	busy    []time.Duration // per-replica cumulative CPU-stage time charged
	stats   []metrics.Bandwidth
	filter  Filter
	crashed []bool

	// linkExtra holds per-link delay spikes installed by SetLinkDelay;
	// nil when no spike was ever installed. skew holds per-replica clock
	// offsets (SetClockSkew), applied to the virtual time a node's
	// handlers observe; nodeClock is the highest time each replica slot
	// has observed, clamping the skewed clock nondecreasing (it survives
	// Replace — the machine's clock, not the process's). observer is the
	// post-filter message tap (SetObserver) used by invariant checkers and
	// fault triggers.
	linkExtra map[linkKey]linkSpike
	skew      []time.Duration
	nodeClock []time.Duration
	observer  func(now time.Duration, from, to types.ReplicaID, msg transport.Message)

	// flows holds per-(sender, receiver) bulk flow state under the
	// BulkDrop and BulkCredit models; nil under BulkPipes. flows[from] is
	// allocated lazily, flows[from][to] on first bulk send of the pair.
	flows [][]*flow

	// tracers[i], when set, receives flow-control lifecycle events (credit
	// park, park-budget eviction) observed at sender i, stamped with the
	// virtual clock — so seeded runs export byte-identical traces.
	tracers []*obs.Tracer

	queue eventHeap
	seq   uint64
	now   time.Duration
	rng   *rand.Rand

	// snk is the single reusable Sink handed to node handlers; only its
	// sender id changes per event. Envelopes pushed into it are dispatched
	// synchronously in emission order with a monotonically increasing
	// sequence tie-break, so identical seeds yield identical runs — the
	// deterministic-Sink property TestDeterministicStatsAcrossRuns asserts
	// at the protocol level.
	snk netSink
}

// netSink routes a node's pushed envelopes into the bandwidth model on
// behalf of the current sender. The Network is single-threaded: exactly one
// node handler runs at a time, so one shared sink suffices.
type netSink struct {
	net  *Network
	from types.ReplicaID
}

// Send implements transport.Sink.
func (s *netSink) Send(env transport.Envelope) { s.net.dispatch(s.from, env) }

// Broadcast implements transport.Sink.
func (s *netSink) Broadcast(msg transport.Message) {
	s.net.dispatch(s.from, transport.Envelope{Broadcast: true, Msg: msg})
}

// sinkFor points the shared sink at the given sender.
func (n *Network) sinkFor(id types.ReplicaID) *netSink {
	n.snk.from = id
	return &n.snk
}

// SetTracer attaches an event tracer to replica slot id. Flow-control
// events observed at that sender (credit parks, park-budget evictions) are
// emitted into it stamped with the virtual clock. A nil tracer detaches.
// The tracer is per-slot, like nodeClock: it survives Replace, so one
// history spans a replica's crash/restart lives.
func (n *Network) SetTracer(id types.ReplicaID, tr *obs.Tracer) {
	if n.tracers == nil {
		n.tracers = make([]*obs.Tracer, len(n.nodes))
	}
	n.tracers[id] = tr
}

// trace emits a flow-control event into sender id's tracer, if attached.
func (n *Network) trace(id types.ReplicaID, kind obs.EventKind, evID uint64, aux int64) {
	if n.tracers == nil {
		return
	}
	n.tracers[id].Emit(n.now, kind, 0, evID, aux)
}

// New builds a network over the given nodes; node i must have ID i.
func New(cfg Config, nodes []transport.Node) (*Network, error) {
	if cfg.EgressBps <= 0 || (cfg.IngressBps <= 0 && !cfg.HalfDuplex) {
		return nil, fmt.Errorf("simnet: capacities must be positive")
	}
	for i, n := range nodes {
		if int(n.ID()) != i {
			return nil, fmt.Errorf("simnet: node at slot %d reports id %d", i, n.ID())
		}
	}
	cfg.Stream.Normalize()
	n := &Network{
		cfg:       cfg,
		nodes:     nodes,
		egress:    make([]time.Duration, len(nodes)),
		ingress:   make([]time.Duration, len(nodes)),
		proc:      make([]time.Duration, len(nodes)),
		busy:      make([]time.Duration, len(nodes)),
		nodeClock: make([]time.Duration, len(nodes)),
		stats:     make([]metrics.Bandwidth, len(nodes)),
		crashed:   make([]bool, len(nodes)),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Bulk != BulkPipes {
		n.flows = make([][]*flow, len(nodes))
	}
	n.snk.net = n
	return n, nil
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// SetFilter installs a message filter (nil clears it).
func (n *Network) SetFilter(f Filter) { n.filter = f }

// SetObserver installs a tap invoked for every unicast message the filter
// admits, before bandwidth charging (nil clears it). The tap must not
// mutate the message: broadcasts fan out the same message value to every
// recipient. Invariant checkers and fault-schedule triggers hang off this
// hook so they compose with, rather than replace, the experiment's filter.
func (n *Network) SetObserver(fn func(now time.Duration, from, to types.ReplicaID, msg transport.Message)) {
	n.observer = fn
}

type linkKey struct{ from, to types.ReplicaID }

type linkSpike struct{ extra, jitter time.Duration }

// SetLinkDelay adds extra one-way propagation delay — plus up to jitter of
// seeded random spread per message — on the from→to link, on top of the
// network-wide Latency/Jitter. Zero extra and jitter clears the spike.
// Deterministic: the spike draws from the network's seeded RNG in event
// order like global jitter does.
func (n *Network) SetLinkDelay(from, to types.ReplicaID, extra, jitter time.Duration) {
	if n.linkExtra == nil {
		n.linkExtra = make(map[linkKey]linkSpike)
	}
	if extra <= 0 && jitter <= 0 {
		delete(n.linkExtra, linkKey{from, to})
		return
	}
	n.linkExtra[linkKey{from, to}] = linkSpike{extra: extra, jitter: jitter}
}

// SetClockSkew offsets the virtual time replica id observes: every
// subsequent Start/Tick/Deliver handler invocation on the node sees
// now+off (clamped at zero, and never behind any time the replica has
// already observed). Network-level bookkeeping — bandwidth charging, event
// ordering, ScheduleCall — stays on true virtual time; only the node's view
// of the clock shifts, modeling a drifting local clock against which the
// node runs its timers. Healing a positive skew therefore does not step the
// observed clock backwards: it holds still until true time catches up, as a
// disciplined clock slews rather than jumps.
func (n *Network) SetClockSkew(id types.ReplicaID, off time.Duration) {
	if n.skew == nil {
		n.skew = make([]time.Duration, len(n.nodes))
	}
	n.skew[id] = off
}

// nodeNow is the virtual time node id's handlers observe: true time plus
// the replica's skew, clamped nondecreasing per slot — leopard's timer
// arithmetic (now - lastPropose, now - vcStartedAt, served timestamps)
// assumes time never runs backwards.
func (n *Network) nodeNow(id types.ReplicaID) time.Duration {
	t := n.now
	if n.skew != nil {
		t += n.skew[id]
		if t < 0 {
			t = 0
		}
	}
	if t < n.nodeClock[id] {
		t = n.nodeClock[id]
	}
	n.nodeClock[id] = t
	return t
}

// Crash stops delivering events to a replica; its in-flight output is lost.
func (n *Network) Crash(id types.ReplicaID) { n.crashed[id] = true }

// Restart resumes delivery to a crashed replica (its state is as it was)
// and unparks every bulk flow toward it. Sim simplification: partial
// stream state survives the crash, where a real receiver would force its
// senders to rewind streams on reconnect.
func (n *Network) Restart(id types.ReplicaID) {
	n.crashed[id] = false
	if n.flows == nil {
		return
	}
	for _, row := range n.flows {
		if row == nil || row[id] == nil {
			continue
		}
		n.flowPump(row[id])
	}
}

// Replace models a crash-restart with durable state: the slot's node is
// swapped for a freshly built one (e.g. recovered from its write-ahead
// log), delivery resumes, and the new node's Start runs at the current
// virtual time — emitting into the deterministic Sink like any other
// event, so identically-seeded runs with identical Replace schedules stay
// byte-identical. The restarted process has no outbound queue, so every
// bulk flow originating at the slot is dropped (queued streams from the
// old life die with it); flows toward the slot unpark as in Restart.
// Sim simplification shared with Restart: in-flight messages addressed to
// the old life may still deliver to the new one — a stray late frame the
// protocol tolerates by design.
func (n *Network) Replace(id types.ReplicaID, node transport.Node) error {
	if int(node.ID()) != int(id) {
		return fmt.Errorf("simnet: replacement for slot %d reports id %d", id, node.ID())
	}
	n.nodes[id] = node
	if n.flows != nil {
		n.flows[id] = nil // fresh outbound: old parked streams are lost
	}
	n.Restart(id)
	node.Start(n.nodeNow(id), n.sinkFor(id))
	return nil
}

// Stats returns the bandwidth accounting for a replica. The pointer stays
// valid across Run calls; callers must not mutate it.
func (n *Network) Stats(id types.ReplicaID) *metrics.Bandwidth { return &n.stats[id] }

// ResetStats clears bandwidth and CPU-stage accounting (e.g. after warmup).
func (n *Network) ResetStats() {
	for i := range n.stats {
		n.stats[i] = metrics.Bandwidth{}
	}
	for i := range n.busy {
		n.busy[i] = 0
	}
}

// ProcBusy returns the cumulative CPU-stage time charged to a replica since
// the last ResetStats: bulk bytes at ProcBps plus per-message VoteProcCost.
// The rotate scenario reads it to compare the leader's CPU share against the
// follower profile.
func (n *Network) ProcBusy(id types.ReplicaID) time.Duration { return n.busy[id] }

func (n *Network) push(e *event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.queue, e)
}

// ScheduleCall runs fn at the given virtual time (e.g. fault injection).
func (n *Network) ScheduleCall(at time.Duration, fn func(now time.Duration)) {
	if at < n.now {
		at = n.now
	}
	n.push(&event{at: at, kind: evCall, fn: fn})
}

// transmissionDelay returns how long size bytes occupy a pipe of rate bps.
func transmissionDelay(size int, bps float64) time.Duration {
	return time.Duration(float64(size) * 8 / bps * float64(time.Second))
}

// occupy charges d of transmission time on pipe[idx], starting no earlier
// than earliest, and returns the completion time. Bulk-lane traffic queues
// FIFO; control-lane traffic (preempt) models priority queuing: real stacks
// interleave small control flows with bulk transfers instead of parking
// them behind megabytes of payload, so control frames transmit immediately
// while their bytes still count against the pipe's capacity (they are <1%
// of traffic, Table III). This is the simulated mirror of the TCP runtime's
// strict control-over-bulk lane scheduler.
func occupy(pipe []time.Duration, idx int, earliest, d time.Duration, preempt bool) time.Duration {
	if preempt {
		if pipe[idx] < earliest {
			pipe[idx] = earliest
		}
		pipe[idx] += d
		return earliest + d
	}
	start := pipe[idx]
	if start < earliest {
		start = earliest
	}
	done := start + d
	pipe[idx] = done
	return done
}

// rates returns the (egress, ingress) rates for a (sender, receiver)
// pair, applying half-duplex splitting and the per-replica ingress
// override.
func (n *Network) rates(to types.ReplicaID) (txRate, rxRate float64) {
	txRate, rxRate = n.cfg.EgressBps, n.cfg.IngressBps
	if n.cfg.HalfDuplex {
		txRate = n.cfg.EgressBps / 2
		return txRate, txRate
	}
	if int(to) < len(n.cfg.IngressBpsPer) && n.cfg.IngressBpsPer[to] > 0 {
		rxRate = n.cfg.IngressBpsPer[to]
	}
	return txRate, rxRate
}

// procDone charges the receiver's CPU stage for a bulk message and returns
// the delivery time. Only payload-bearing bulk classes are charged —
// deserializing and hashing request bytes is what saturates the paper's
// 4-vCPU replicas, while votes and proofs are small and handled
// out-of-band (separate connections/cores), so modeling them through the
// same FIFO would add a priority inversion real systems do not have. This
// keys on the message itself (IsBulk), not the scheduling lane: re-laning
// a bulk message onto the control lane expedites its transmission but
// cannot waive its CPU cost. VoteProcCost opts vote/proof-class messages
// into the same stage at a fixed per-message cost, for experiments that
// study the vote-aggregation ceiling itself (the rotate scenario).
func (n *Network) procDone(to types.ReplicaID, msg transport.Message, rxDone time.Duration) time.Duration {
	var cost time.Duration
	switch {
	case n.cfg.ProcBps > 0 && transport.IsBulk(msg):
		cost = transmissionDelay(msg.WireSize(), n.cfg.ProcBps)
	case n.cfg.VoteProcCost > 0 &&
		(msg.Class() == transport.ClassVote || msg.Class() == transport.ClassProof):
		cost = n.cfg.VoteProcCost
	default:
		return rxDone
	}
	pStart := n.proc[to]
	if pStart < rxDone {
		pStart = rxDone
	}
	deliverAt := pStart + cost
	n.proc[to] = deliverAt
	n.busy[to] += cost
	return deliverAt
}

// arrival applies propagation latency and jitter — plus any installed
// per-link delay spike — to an egress completion.
func (n *Network) arrival(from, to types.ReplicaID, txDone time.Duration) time.Duration {
	arrive := txDone + n.cfg.Latency
	if n.cfg.Jitter > 0 {
		arrive += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	if n.linkExtra != nil {
		if sp, ok := n.linkExtra[linkKey{from, to}]; ok {
			arrive += sp.extra
			if sp.jitter > 0 {
				arrive += time.Duration(n.rng.Int63n(int64(sp.jitter)))
			}
		}
	}
	return arrive
}

// send routes one unicast message through the bandwidth model. The lane
// decides pipe scheduling: control-lane messages preempt queued bulk on
// both the egress and ingress pipes; bulk queues FIFO under the legacy
// pipe model, or enters the pair's flow (bounded queue / credit stream)
// under the BulkDrop and BulkCredit models.
func (n *Network) send(from, to types.ReplicaID, msg transport.Message, lane transport.Lane) {
	if int(to) >= len(n.nodes) || from == to {
		return
	}
	if n.cfg.Codec != nil {
		// Wire fidelity: round-trip through the codec per receiver. Each
		// Encode allocates a fresh frame, so the Decode below owns it —
		// the same ownership transfer the TCP read loop performs — and the
		// receiver gets an independent message rather than an alias of the
		// sender's.
		frame, err := n.cfg.Codec.Encode(msg)
		if err != nil {
			return // unencodable: drop, as the TCP dispatch path does
		}
		decoded, err := n.cfg.Codec.Decode(frame)
		if err != nil {
			return // protocol violation on the wire: drop
		}
		msg = decoded
	}
	size := msg.WireSize()
	n.stats[from].AddSent(msg.Class(), size)
	if lane == transport.LaneBulk && n.flows != nil {
		n.flowEnqueue(from, to, msg, size)
		return
	}
	preempt := lane == transport.LaneControl && !n.cfg.DisableLanePriority
	txRate, rxRate := n.rates(to)

	// Egress: serialize through the sender's pipe.
	txDone := occupy(n.egress, int(from), n.now, transmissionDelay(size, txRate), preempt)
	// Propagation, then ingress: serialize through the receiver's pipe.
	arrive := n.arrival(from, to, txDone)
	rxDone := occupy(n.ingress, int(to), arrive, transmissionDelay(size, rxRate), preempt)
	n.push(&event{at: n.procDone(to, msg, rxDone), kind: evDeliver, from: from, to: to, msg: msg})
}

// flow is one (sender, receiver) pair's bulk lane under the BulkDrop or
// BulkCredit model: the simulated mirror of the TCP runtime's per-peer
// stream scheduler (BulkCredit) or bounded bulk queue (BulkDrop). All
// state advances deterministically through heap events.
type flow struct {
	from, to types.ReplicaID
	streams  []*simStream
	rr       int
	inflight int64 // bytes booked on the pipes and not yet arrived
	credit   int64 // BulkCredit: remaining send window
	consumed int64 // BulkCredit: receiver bytes not yet granted back
	queued   int64 // unsent bulk payload parked in this flow
	peak     int64
	evicts   int64
}

// simStream is one queued bulk message mid-stream.
type simStream struct {
	msg  transport.Message
	size int
	off  int
}

// flowFor returns (lazily creating) the pair's flow.
func (n *Network) flowFor(from, to types.ReplicaID) *flow {
	if n.flows[from] == nil {
		n.flows[from] = make([]*flow, len(n.nodes))
	}
	f := n.flows[from][to]
	if f == nil {
		f = &flow{from: from, to: to, credit: n.cfg.Stream.CreditWindow}
		n.flows[from][to] = f
	}
	return f
}

// flowEnqueue admits one bulk message into the pair's flow, enforcing the
// park budget: BulkDrop tail-drops the new frame like a full bounded
// queue; BulkCredit evicts the oldest not-yet-started streams first (the
// slow-peer eviction path) and drops the new frame only if the budget
// still cannot fit it.
func (n *Network) flowEnqueue(from, to types.ReplicaID, msg transport.Message, size int) {
	f := n.flowFor(from, to)
	budget := n.cfg.Stream.ParkBudget
	if f.queued+int64(size) > budget {
		if n.cfg.Bulk == BulkDrop {
			f.evicts++
			n.trace(from, obs.EvCreditEvicted, uint64(to), f.queued)
			return
		}
		kept := f.streams[:0]
		for _, st := range f.streams {
			if f.queued+int64(size) > budget && st.off == 0 {
				f.queued -= int64(st.size)
				f.evicts++
				n.trace(from, obs.EvCreditEvicted, uint64(to), f.queued)
				continue
			}
			kept = append(kept, st)
		}
		f.streams = kept
		f.rr = 0
		if f.queued+int64(size) > budget {
			f.evicts++
			n.trace(from, obs.EvCreditEvicted, uint64(to), f.queued)
			return
		}
	}
	f.queued += int64(size)
	if f.queued > f.peak {
		f.peak = f.queued
	}
	f.streams = append(f.streams, &simStream{msg: msg, size: size})
	n.flowPump(f)
	if n.cfg.Bulk == BulkCredit && f.credit <= 0 && f.queued > 0 {
		// The new frame (or its tail) parked awaiting a credit grant.
		n.trace(from, obs.EvCreditParked, uint64(to), f.queued)
	}
}

// flowPump books transfer units on the pipes until the flow's window is
// full: round-robin chunks under BulkCredit (each debiting the credit
// window, parking at zero credit), whole frames under BulkDrop (bounded
// by the same window's worth of in-flight bytes, modeling the kernel
// socket buffer ahead of PR 3's bounded queue). In both modes the window
// caps the bytes booked-but-not-arrived, so a slow receiver backpressures
// the queue exactly as a full TCP window would while the pipe stays full
// within the window, and the parked backlog is observable (StreamStats).
func (n *Network) flowPump(f *flow) {
	for n.flowBookOne(f) {
	}
}

// flowBookOne books one unit; false means the flow is drained or parked.
func (n *Network) flowBookOne(f *flow) bool {
	if len(f.streams) == 0 || n.crashed[f.to] {
		return false
	}
	var st *simStream
	var chunk int
	if n.cfg.Bulk == BulkDrop {
		if f.inflight >= n.cfg.Stream.CreditWindow {
			return false // socket buffer full: the queue holds the rest
		}
		st = f.streams[0]
		chunk = st.size
	} else {
		if f.credit <= 0 {
			return false // parked: a credit grant re-pumps
		}
		active := len(f.streams)
		if active > n.cfg.Stream.MaxStreams {
			active = n.cfg.Stream.MaxStreams
		}
		if f.rr >= active {
			f.rr = 0
		}
		st = f.streams[f.rr]
		chunk = n.cfg.Stream.ChunkLen(st.size, st.off)
		if int64(chunk) > f.credit {
			chunk = int(f.credit) // partial chunk, like the TCP scheduler
		}
		f.credit -= int64(chunk)
	}
	st.off += chunk
	f.queued -= int64(chunk)
	f.inflight += int64(chunk)
	var final transport.Message
	if st.off == st.size {
		final = st.msg
		if n.cfg.Bulk == BulkDrop {
			f.streams = f.streams[1:]
		} else {
			f.streams = append(f.streams[:f.rr], f.streams[f.rr+1:]...)
		}
	} else {
		f.rr++
	}

	txRate, rxRate := n.rates(f.to)
	txDone := occupy(n.egress, int(f.from), n.now, transmissionDelay(chunk, txRate), false)
	arrive := n.arrival(f.from, f.to, txDone)
	rxDone := occupy(n.ingress, int(f.to), arrive, transmissionDelay(chunk, rxRate), false)
	n.push(&event{at: rxDone, kind: evChunk, from: f.from, to: f.to, msg: final, flow: f, n: int64(chunk)})
	return true
}

// chunkArrived handles evChunk: the unit finished its ingress transfer.
// The receiver accounts consumed bytes toward a credit grant, the final
// chunk of a stream schedules the message's delivery (through the CPU
// stage), and the flow pumps its next unit.
func (n *Network) chunkArrived(e *event) {
	f := e.flow
	f.inflight -= e.n
	if n.crashed[f.to] {
		// The chunk hits a dead receiver: it is lost (no delivery, no
		// grant), but its credit refunds immediately — the sim's
		// stand-in for the TCP sender's fresh window after the
		// connection reset. Without the refund, a flow with a full
		// window in flight at the crash would stay parked forever and
		// Restart could never unpark it.
		if n.cfg.Bulk == BulkCredit {
			f.credit += e.n
			if f.credit > n.cfg.Stream.CreditWindow {
				f.credit = n.cfg.Stream.CreditWindow
			}
		}
		return
	}
	if n.cfg.Bulk == BulkCredit {
		f.consumed += e.n
		if f.consumed >= n.cfg.Stream.GrantThreshold() {
			n.sendGrant(f, f.consumed)
			f.consumed = 0
		}
	}
	if e.msg != nil {
		n.push(&event{at: n.procDone(f.to, e.msg, n.now), kind: evDeliver, from: f.from, to: f.to, msg: e.msg})
	}
	n.flowPump(f)
}

// sendGrant models the receiver's CreditMsg: a small control-lane frame
// from f.to back to f.from, preempting queued bulk like any control
// traffic, charged to both pipes and accounted under ClassMisc.
func (n *Network) sendGrant(f *flow, bytes int64) {
	grant := &transport.CreditMsg{Consumed: bytes}
	size := grant.WireSize()
	preempt := !n.cfg.DisableLanePriority
	n.stats[f.to].AddSent(grant.Class(), size)
	txRate, rxRate := n.rates(f.from)
	txDone := occupy(n.egress, int(f.to), n.now, transmissionDelay(size, txRate), preempt)
	arrive := n.arrival(f.to, f.from, txDone)
	rxDone := occupy(n.ingress, int(f.from), arrive, transmissionDelay(size, rxRate), preempt)
	n.stats[f.from].AddReceived(grant.Class(), size)
	n.push(&event{at: rxDone, kind: evCredit, flow: f, n: bytes})
}

// creditArrived handles evCredit: the grant reopens the window (capped,
// as in the TCP scheduler) and unparks the flow.
func (n *Network) creditArrived(e *event) {
	f := e.flow
	f.credit += e.n
	if f.credit > n.cfg.Stream.CreditWindow {
		f.credit = n.cfg.Stream.CreditWindow
	}
	n.flowPump(f)
}

// StreamStats aggregates the bulk flow-control counters across every flow
// originating at sender id: parked bytes, in-flight window, queued
// streams and park-budget evictions. Zero under BulkPipes.
func (n *Network) StreamStats(id types.ReplicaID) metrics.StreamStats {
	var out metrics.StreamStats
	if n.flows == nil || n.flows[id] == nil {
		return out
	}
	for _, f := range n.flows[id] {
		if f == nil {
			continue
		}
		out.Accumulate(metrics.StreamStats{
			QueuedBytes:        f.queued,
			PeakQueuedBytes:    f.peak,
			CreditsOutstanding: n.cfg.Stream.CreditWindow - f.credit,
			StreamsActive:      int64(len(f.streams)),
			Evictions:          f.evicts,
		})
	}
	return out
}

// BulkDrops returns the bulk frames sender id lost to the park budget
// (BulkCredit evictions or BulkDrop overflow).
func (n *Network) BulkDrops(id types.ReplicaID) int64 {
	return n.StreamStats(id).Evictions
}

// TotalBulkDrops sums BulkDrops over all senders.
func (n *Network) TotalBulkDrops() int64 {
	var total int64
	for i := range n.nodes {
		total += n.BulkDrops(types.ReplicaID(i))
	}
	return total
}

// PeakQueuedBytes returns the largest bulk backlog any single sender
// parked at once (the max over senders of their per-sender peak).
func (n *Network) PeakQueuedBytes() int64 {
	var peak int64
	for i := range n.nodes {
		if p := n.StreamStats(types.ReplicaID(i)).PeakQueuedBytes; p > peak {
			peak = p
		}
	}
	return peak
}

// dispatch fans an envelope out into unicast sends, applying the filter.
func (n *Network) dispatch(from types.ReplicaID, env transport.Envelope) {
	if env.Msg == nil {
		return
	}
	lane := env.EffectiveLane()
	deliverTo := func(to types.ReplicaID) {
		if n.filter != nil && !n.filter(n.now, from, to, env.Msg) {
			return
		}
		if n.observer != nil {
			n.observer(n.now, from, to, env.Msg)
		}
		n.send(from, to, env.Msg, lane)
	}
	if env.Broadcast {
		for id := range n.nodes {
			if types.ReplicaID(id) != from {
				deliverTo(types.ReplicaID(id))
			}
		}
		return
	}
	deliverTo(env.To)
}

// Start initializes all nodes and schedules ticking. Call once before Run.
func (n *Network) Start() {
	for _, node := range n.nodes {
		node.Start(n.nodeNow(node.ID()), n.sinkFor(node.ID()))
	}
	if n.cfg.TickInterval > 0 {
		n.scheduleTick(n.cfg.TickInterval)
	}
}

func (n *Network) scheduleTick(at time.Duration) {
	n.push(&event{at: at, kind: evTick})
}

// Run advances virtual time until the given deadline, processing all events.
func (n *Network) Run(until time.Duration) {
	for n.queue.Len() > 0 {
		e := n.queue[0]
		if e.at > until {
			break
		}
		heap.Pop(&n.queue)
		n.now = e.at
		switch e.kind {
		case evDeliver:
			if n.crashed[e.to] {
				continue
			}
			n.stats[e.to].AddReceived(e.msg.Class(), e.msg.WireSize())
			n.nodes[e.to].Deliver(n.nodeNow(e.to), e.from, e.msg, n.sinkFor(e.to))
		case evTick:
			for _, node := range n.nodes {
				if n.crashed[node.ID()] {
					continue
				}
				node.Tick(n.nodeNow(node.ID()), n.sinkFor(node.ID()))
			}
			// Always reschedule; if the next tick lies beyond the
			// deadline it stays queued for a later Run call.
			n.scheduleTick(n.now + n.cfg.TickInterval)
		case evCall:
			e.fn(n.now)
		case evChunk:
			n.chunkArrived(e)
		case evCredit:
			n.creditArrived(e)
		}
	}
	if n.now < until {
		n.now = until
	}
}

// PipeLag reports how far each of a replica's pipes is booked beyond the
// current virtual time: (egress, ingress, processing). Diagnostic helper
// for experiments and tests.
func (n *Network) PipeLag(id types.ReplicaID) (tx, rx, proc time.Duration) {
	lag := func(at time.Duration) time.Duration {
		if at <= n.now {
			return 0
		}
		return at - n.now
	}
	return lag(n.egress[id]), lag(n.ingress[id]), lag(n.proc[id])
}
