package simnet

import (
	"testing"
	"time"

	"leopard/internal/transport"
)

// streamCfg returns a BulkCredit network configuration with reasoning-
// friendly numbers: 1 MB/s pipes (1 KB ≈ 1 ms), small chunks and an
// explicit window.
func streamCfg(window int64) Config {
	return Config{
		EgressBps:  8e6, // 1 MB/s
		IngressBps: 8e6,
		Latency:    0,
		Bulk:       BulkCredit,
		Stream: transport.StreamConfig{
			ChunkSize:       1000,
			StreamThreshold: 1000,
			CreditWindow:    window,
			ParkBudget:      1 << 20,
			MaxStreams:      4,
		},
	}
}

// TestCreditFlowDelivers: a message far larger than the credit window
// still arrives intact — the window parks the flow, grants resume it, and
// the chunks reassemble into exactly one delivery.
func TestCreditFlowDelivers(t *testing.T) {
	cfg := streamCfg(2000)
	net, nodes := newTestNet(t, cfg, 2)
	nodes[0].onStart = []transport.Envelope{transport.Unicast(1, &testMsg{size: 50000, tag: 7})}
	net.Start()
	net.Run(time.Second)
	if len(nodes[1].got) != 1 || nodes[1].got[0] != 7 {
		t.Fatalf("delivered %v, want exactly [7]", nodes[1].got)
	}
	if drops := net.TotalBulkDrops(); drops != 0 {
		t.Fatalf("credit flow dropped %d frames", drops)
	}
	// The receiver granted credits on the way: ClassMisc traffic flowed
	// back from 1 to 0.
	if got := net.Stats(1).Sent[transport.ClassMisc]; got == 0 {
		t.Fatal("no credit grants accounted")
	}
	st := net.StreamStats(0)
	if st.QueuedBytes != 0 || st.StreamsActive != 0 {
		t.Fatalf("flow not drained: %+v", st)
	}
	if st.PeakQueuedBytes == 0 {
		t.Fatal("peak queued bytes never recorded")
	}
}

// TestCreditWindowParksFlow pins the park/resume cycle through timing:
// with 10 ms of one-way latency, a window-limited flow moves one window
// per grant round trip, so halving the window roughly doubles transfer
// time. A bandwidth-limited flow (huge window) finishes in ~transfer
// time + one latency.
func TestCreditWindowParksFlow(t *testing.T) {
	transfer := func(window int64) time.Duration {
		cfg := streamCfg(window)
		cfg.Latency = 10 * time.Millisecond
		net, nodes := newTestNet(t, cfg, 2)
		nodes[0].onStart = []transport.Envelope{transport.Unicast(1, &testMsg{size: 40000, tag: 1})}
		net.Start()
		net.Run(10 * time.Second)
		if len(nodes[1].got) != 1 {
			t.Fatalf("window %d: delivered %d messages", window, len(nodes[1].got))
		}
		return nodes[1].gotAt[0]
	}
	wide := transfer(1 << 20)  // bandwidth-limited: ~40ms wire + 10ms latency
	narrow := transfer(4000)   // ~10 park/resume round trips
	narrower := transfer(2000) // ~20 round trips
	if wide > 100*time.Millisecond {
		t.Fatalf("wide window transfer took %v, want bandwidth-limited ~50ms", wide)
	}
	if narrow < 2*wide {
		t.Fatalf("narrow window %v not slower than wide %v: flow never parked", narrow, wide)
	}
	if narrower < narrow+(narrow-wide)/2 {
		t.Fatalf("halving the window %v -> %v did not add park round trips", narrow, narrower)
	}
}

// TestCreditInterleavingLetsSmallStreamFinishFirst: under BulkCredit a
// small bulk message enqueued behind a huge one overtakes it (fair chunk
// round-robin), while BulkDrop drains strictly FIFO. This is the
// head-of-line-blocking cure inside the bulk lane itself.
func TestCreditInterleavingLetsSmallStreamFinishFirst(t *testing.T) {
	order := func(bulk BulkModel) []int {
		// A window much smaller than the large message keeps its stream
		// parked in the queue, where the later small stream can interleave.
		cfg := streamCfg(10000)
		cfg.Bulk = bulk
		net, nodes := newTestNet(t, cfg, 2)
		nodes[0].onStart = []transport.Envelope{
			transport.Unicast(1, &testMsg{size: 100000, tag: 1}),
			transport.Unicast(1, &testMsg{size: 2000, tag: 2}),
		}
		net.Start()
		net.Run(time.Second)
		return nodes[1].got
	}
	if got := order(BulkCredit); len(got) != 2 || got[0] != 2 {
		t.Fatalf("BulkCredit delivery order %v, want the small stream first", got)
	}
	if got := order(BulkDrop); len(got) != 2 || got[0] != 1 {
		t.Fatalf("BulkDrop delivery order %v, want FIFO", got)
	}
}

// TestCreditNeverGrantsEvicts is the slow-peer eviction path: a stalled
// receiver (crashed: it neither consumes nor grants) parks the flow, the
// park budget caps the backlog by evicting the oldest unstarted streams,
// and after the receiver comes back the surviving streams deliver.
func TestCreditNeverGrantsEvicts(t *testing.T) {
	cfg := streamCfg(1000)
	cfg.Stream.ParkBudget = 10000
	net, nodes := newTestNet(t, cfg, 2)
	net.Start()
	net.Crash(1)
	net.ScheduleCall(time.Millisecond, func(now time.Duration) {
		for i := 0; i < 6; i++ {
			net.dispatch(0, transport.Unicast(1, &testMsg{size: 3000, tag: 10 + i}))
		}
	})
	net.Run(100 * time.Millisecond)
	st := net.StreamStats(0)
	if st.Evictions != 3 {
		// 6×3000 = 18000 against a 10000 budget: three evicted.
		t.Fatalf("evictions %d, want 3 (stats %+v)", st.Evictions, st)
	}
	if st.QueuedBytes > cfg.Stream.ParkBudget {
		t.Fatalf("parked %d bytes over budget %d", st.QueuedBytes, cfg.Stream.ParkBudget)
	}
	if len(nodes[1].got) != 0 {
		t.Fatal("crashed receiver got deliveries")
	}
	net.Restart(1)
	net.Run(time.Second)
	if len(nodes[1].got) != 3 {
		t.Fatalf("surviving streams delivered %d, want 3", len(nodes[1].got))
	}
	if st := net.StreamStats(0); st.QueuedBytes != 0 || st.StreamsActive != 0 {
		t.Fatalf("flow not drained after restart: %+v", st)
	}
}

// TestBulkDropBaselineDrops pins the drop-on-overflow baseline the stream
// scenario compares against: the same stalled-receiver burst tail-drops
// new frames at the bounded queue instead of evicting old ones.
func TestBulkDropBaselineDrops(t *testing.T) {
	cfg := streamCfg(1000)
	cfg.Bulk = BulkDrop
	cfg.Stream.ParkBudget = 10000
	net, nodes := newTestNet(t, cfg, 2)
	net.Start()
	net.Crash(1)
	net.ScheduleCall(time.Millisecond, func(now time.Duration) {
		for i := 0; i < 6; i++ {
			net.dispatch(0, transport.Unicast(1, &testMsg{size: 3000, tag: 10 + i}))
		}
	})
	net.Run(100 * time.Millisecond)
	if drops := net.BulkDrops(0); drops != 3 {
		t.Fatalf("drops %d, want 3", drops)
	}
	net.Restart(1)
	net.Run(time.Second)
	// Tail drop keeps the oldest frames: tags 10, 11, 12.
	if len(nodes[1].got) != 3 || nodes[1].got[0] != 10 {
		t.Fatalf("baseline delivered %v, want the first three tags", nodes[1].got)
	}
}

// TestCreditControlStillPreempts: control traffic keeps its strict
// priority over the streamed bulk lane — a vote sent mid-transfer does
// not wait for the bulk backlog.
func TestCreditControlStillPreempts(t *testing.T) {
	cfg := streamCfg(1 << 20)
	net, nodes := newTestNet(t, cfg, 2)
	nodes[0].onStart = []transport.Envelope{
		transport.Unicast(1, &testMsg{size: 1000000, tag: 1}), // ~1s of bulk
		transport.Unicast(1, &testMsg{size: 100, tag: 2, class: transport.ClassVote}),
	}
	net.Start()
	net.Run(5 * time.Second)
	if len(nodes[1].got) != 2 || nodes[1].got[0] != 2 {
		t.Fatalf("delivery order %v, want the vote first", nodes[1].got)
	}
	if nodes[1].gotAt[0] > 10*time.Millisecond {
		t.Fatalf("vote delayed to %v behind streamed bulk", nodes[1].gotAt[0])
	}
}

// TestSlowReceiverIngressOverride: IngressBpsPer throttles one replica's
// ingress without touching the others.
func TestSlowReceiverIngressOverride(t *testing.T) {
	cfg := streamCfg(1 << 20)
	cfg.IngressBpsPer = []float64{0, 0, 8e4} // replica 2: 10 KB/s
	net, nodes := newTestNet(t, cfg, 3)
	nodes[0].onStart = []transport.Envelope{
		transport.Unicast(1, &testMsg{size: 10000, tag: 1}),
		transport.Unicast(2, &testMsg{size: 10000, tag: 2}),
	}
	net.Start()
	net.Run(10 * time.Second)
	if len(nodes[1].got) != 1 || len(nodes[2].got) != 1 {
		t.Fatalf("deliveries %v / %v", nodes[1].got, nodes[2].got)
	}
	fast, slow := nodes[1].gotAt[0], nodes[2].gotAt[0]
	if slow < 50*fast {
		t.Fatalf("slow receiver at %v vs fast %v: override not applied", slow, fast)
	}
}

// TestStreamDeterminism: identically-seeded BulkCredit runs with jitter
// produce identical chunk schedules, grants and delivery times.
func TestStreamDeterminism(t *testing.T) {
	run := func() []time.Duration {
		cfg := streamCfg(3000)
		cfg.Jitter = time.Millisecond
		cfg.Seed = 99
		net, nodes := newTestNet(t, cfg, 4)
		nodes[0].onStart = []transport.Envelope{transport.Broadcast(&testMsg{size: 25000, tag: 1})}
		nodes[1].onStart = []transport.Envelope{transport.Broadcast(&testMsg{size: 12000, tag: 2})}
		net.Start()
		net.Run(10 * time.Second)
		var all []time.Duration
		for _, n := range nodes {
			all = append(all, n.gotAt...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("event counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v: stream model not deterministic", i, a[i], b[i])
		}
	}
}

// TestCreditCrashMidFlightRecovers: chunks in flight when the receiver
// crashes refund their credit (the sim's stand-in for the TCP window
// reset on reconnect) — without the refund the flow would park forever
// with the window "in flight" to a dead peer and Restart could never
// unpark it.
func TestCreditCrashMidFlightRecovers(t *testing.T) {
	cfg := streamCfg(2000) // window = 2 chunks
	net, nodes := newTestNet(t, cfg, 2)
	net.Start()
	net.ScheduleCall(time.Millisecond, func(now time.Duration) {
		net.dispatch(0, transport.Unicast(1, &testMsg{size: 10000, tag: 5}))
	})
	// Crash while the first window's chunks are on the wire (1 KB takes
	// 1 ms; both booked chunks arrive after the crash).
	net.ScheduleCall(1500*time.Microsecond, func(now time.Duration) {
		net.Crash(1)
	})
	net.Run(50 * time.Millisecond)
	if len(nodes[1].got) != 0 {
		t.Fatal("crashed receiver got a delivery")
	}
	// The in-flight chunks' credit must have refunded: otherwise the
	// flow is parked at zero credit forever.
	net.Restart(1)
	net.Run(10 * time.Second)
	if len(nodes[1].got) != 1 || nodes[1].got[0] != 5 {
		t.Fatalf("flow never recovered after restart: got %v", nodes[1].got)
	}
	if st := net.StreamStats(0); st.QueuedBytes != 0 || st.StreamsActive != 0 {
		t.Fatalf("flow not drained: %+v", st)
	}
}
