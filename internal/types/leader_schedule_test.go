package types_test

import (
	"math/rand"
	"testing"

	"leopard/internal/types"
)

// TestLeaderForAgreement: the schedule is a pure function of public state —
// every replica computing LeaderFor for the same (view, seq, n) gets the
// same proposer, including across view-change boundaries, and the result is
// always a valid replica id.
func TestLeaderForAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{4, 7, 16, 64} {
		for trial := 0; trial < 200; trial++ {
			v := types.View(rng.Int63n(1 << 20))
			s := types.SeqNum(rng.Int63n(1 << 30))
			first := types.LeaderFor(v, s, n)
			if int(first) >= n {
				t.Fatalf("n=%d view=%d seq=%d: proposer %d out of range", n, v, s, first)
			}
			// Each "replica" derives the proposer independently; all must
			// agree (the function may consult nothing replica-local).
			for replica := 0; replica < n; replica++ {
				if got := types.LeaderFor(v, s, n); got != first {
					t.Fatalf("n=%d view=%d seq=%d: replica %d derived %d, others %d",
						n, v, s, replica, got, first)
				}
			}
			// Across a view-change boundary the shifted schedule is still
			// the same function for everyone: v+1 maps seq s where v mapped
			// s+1, so a crashed proposer's slots move to its successor.
			if types.LeaderFor(v+1, s, n) != types.LeaderFor(v, s+1, n) {
				t.Fatalf("n=%d view=%d seq=%d: view shift is not a schedule rotation", n, v, s)
			}
		}
	}
}

// TestLeaderForFairness: in any window of n consecutive serials — at any
// view, starting anywhere — every replica proposes exactly once.
func TestLeaderForFairness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 10, 64} {
		for trial := 0; trial < 100; trial++ {
			v := types.View(rng.Int63n(1 << 20))
			start := types.SeqNum(rng.Int63n(1 << 30))
			seen := make(map[types.ReplicaID]int, n)
			for i := 0; i < n; i++ {
				seen[types.LeaderFor(v, start+types.SeqNum(i), n)]++
			}
			if len(seen) != n {
				t.Fatalf("n=%d view=%d window at %d: only %d distinct proposers", n, v, start, len(seen))
			}
			for id, count := range seen {
				if count != 1 {
					t.Fatalf("n=%d view=%d window at %d: replica %d proposed %d times", n, v, start, id, count)
				}
			}
		}
	}
}

// TestLeaderForDeterministicUnderReseeding: the schedule depends only on
// (view, seq, n) — recomputing it in a different order, from different
// randomized probe sequences, reproduces the identical table. A schedule
// with hidden state (an RNG, iteration-order dependence) would diverge.
func TestLeaderForDeterministicUnderReseeding(t *testing.T) {
	const n = 16
	type key struct {
		v types.View
		s types.SeqNum
	}
	table := make(map[key]types.ReplicaID)
	for _, seed := range []int64{1, 99, -3} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 500; trial++ {
			k := key{types.View(rng.Int63n(64)), types.SeqNum(rng.Int63n(256))}
			got := types.LeaderFor(k.v, k.s, n)
			if prev, ok := table[k]; ok && prev != got {
				t.Fatalf("view=%d seq=%d: derived %d after seed %d, previously %d",
					k.v, k.s, got, seed, prev)
			}
			table[k] = got
		}
	}
}

// TestLeaderForMatchesFixedPolicyShape: LeaderFor degenerates sensibly —
// at seq 0 it matches the fixed per-view policy LeaderOf, anchoring the
// rotated schedule to the view-change coordinator line.
func TestLeaderForMatchesFixedPolicyShape(t *testing.T) {
	for _, n := range []int{4, 8, 64} {
		for v := types.View(0); v < types.View(3*n); v++ {
			if types.LeaderFor(v, 0, n) != types.LeaderOf(v, n) {
				t.Fatalf("n=%d view=%d: LeaderFor(v, 0) diverges from LeaderOf(v)", n, v)
			}
		}
	}
}
