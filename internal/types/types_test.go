package types

import (
	"testing"
	"testing/quick"
)

func TestNewQuorumParams(t *testing.T) {
	tests := []struct {
		n       int
		wantF   int
		wantErr bool
	}{
		{n: 0, wantErr: true},
		{n: 3, wantErr: true},
		{n: 4, wantF: 1},
		{n: 5, wantF: 1},
		{n: 6, wantF: 1},
		{n: 7, wantF: 2},
		{n: 10, wantF: 3},
		{n: 100, wantF: 33},
		{n: 300, wantF: 99},
		{n: 301, wantF: 100},
		{n: 600, wantF: 199},
	}
	for _, tt := range tests {
		q, err := NewQuorumParams(tt.n)
		if tt.wantErr {
			if err == nil {
				t.Errorf("n=%d: want error, got %+v", tt.n, q)
			}
			continue
		}
		if err != nil {
			t.Errorf("n=%d: unexpected error %v", tt.n, err)
			continue
		}
		if q.F != tt.wantF {
			t.Errorf("n=%d: f=%d, want %d", tt.n, q.F, tt.wantF)
		}
		if !q.Valid() {
			t.Errorf("n=%d: params invalid", tt.n)
		}
	}
}

// TestQuorumIntersection checks the fundamental BFT property: two quorums
// of size 2f+1 among 3f+1 replicas intersect in at least f+1 replicas,
// guaranteeing an honest replica in the intersection.
func TestQuorumIntersection(t *testing.T) {
	check := func(fRaw uint16) bool {
		f := int(fRaw)%500 + 1
		n := 3*f + 1 // the paper's exact resilience setting
		q, err := NewQuorumParams(n)
		if err != nil || q.F != f {
			return false
		}
		intersection := 2*q.Quorum() - q.N
		return intersection >= q.F+1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestQuorumThresholds(t *testing.T) {
	q, err := NewQuorumParams(301)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q.Quorum(), 201; got != want {
		t.Errorf("Quorum() = %d, want %d", got, want)
	}
	if got, want := q.Small(), 101; got != want {
		t.Errorf("Small() = %d, want %d", got, want)
	}
}

func TestLeaderOfRoundRobin(t *testing.T) {
	const n = 7
	seen := make(map[ReplicaID]int)
	for v := View(1); v <= n; v++ {
		seen[LeaderOf(v, n)]++
	}
	if len(seen) != n {
		t.Fatalf("expected %d distinct leaders over %d views, got %d", n, n, len(seen))
	}
	for id, count := range seen {
		if count != 1 {
			t.Errorf("leader %d elected %d times in one rotation", id, count)
		}
	}
	if LeaderOf(1, n) == LeaderOf(2, n) {
		t.Error("consecutive views must rotate the leader")
	}
}

func TestRequestIDAndSize(t *testing.T) {
	r := Request{ClientID: 7, Seq: 9, Payload: make([]byte, 128)}
	if r.ID() != (RequestID{Client: 7, Seq: 9}) {
		t.Errorf("unexpected id %+v", r.ID())
	}
	if r.Size() != 20+128 {
		t.Errorf("Size() = %d, want %d", r.Size(), 20+128)
	}
}

func TestDatablockSizes(t *testing.T) {
	db := &Datablock{Ref: DatablockRef{Generator: 3, Counter: 1}}
	for i := 0; i < 10; i++ {
		db.Requests = append(db.Requests, Request{ClientID: 1, Seq: uint64(i), Payload: make([]byte, 100)})
	}
	if got, want := db.PayloadBytes(), 1000; got != want {
		t.Errorf("PayloadBytes() = %d, want %d", got, want)
	}
	if db.Size() <= db.PayloadBytes() {
		t.Errorf("Size() = %d must exceed raw payload %d", db.Size(), db.PayloadBytes())
	}
}

func TestBFTblockDigestInputDistinguishes(t *testing.T) {
	h1 := Hash{1}
	h2 := Hash{2}
	blocks := []*BFTblock{
		{View: 1, Seq: 1, Content: []Hash{h1}},
		{View: 1, Seq: 2, Content: []Hash{h1}},
		{View: 2, Seq: 1, Content: []Hash{h1}},
		{View: 1, Seq: 1, Content: []Hash{h2}},
		{View: 1, Seq: 1, Content: []Hash{h1, h2}},
	}
	seen := make(map[string]int)
	for i, b := range blocks {
		key := string(b.AppendDigestInput(nil))
		if prev, dup := seen[key]; dup {
			t.Errorf("blocks %d and %d encode identically", prev, i)
		}
		seen[key] = i
	}
}

func TestBlockStateString(t *testing.T) {
	states := map[BlockState]string{
		StatePending:   "pending",
		StateNotarized: "notarized",
		StateConfirmed: "confirmed",
		StateExecuted:  "executed",
		BlockState(42): "BlockState(42)",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestHashHelpers(t *testing.T) {
	var zero Hash
	if !zero.IsZero() {
		t.Error("zero hash must report IsZero")
	}
	h := Hash{0xab, 0xcd}
	if h.IsZero() {
		t.Error("non-zero hash reports IsZero")
	}
	if h.String() == "" {
		t.Error("String() must render something")
	}
}
