// Package workload generates client load for experiments: open-loop fixed
// request rates and closed-loop saturation (mempools kept topped up, as in
// the paper's stress tests), plus client-side latency measurement and the
// deterministic responsible-replica assignment µ(req) from Leopard §IV-A1.
package workload

import (
	"time"

	"leopard/internal/metrics"
	"leopard/internal/types"
)

// Assign implements the paper's deterministic function µ(req): it maps a
// request to the non-leader replica responsible for disseminating it. The
// leader is skipped so clients never submit to it.
func Assign(req types.RequestID, n int, leader types.ReplicaID) types.ReplicaID {
	if n <= 1 {
		return 0
	}
	slot := (req.Client*1000003 + req.Seq) % uint64(n-1)
	id := types.ReplicaID(slot)
	if id >= leader {
		id++
	}
	return id
}

// Generator produces a deterministic stream of fixed-size requests.
// Requests share one payload buffer: identity lives in (ClientID, Seq), and
// consensus treats payloads as opaque, so sharing keeps multi-million-
// request simulations within memory. Callers that mutate payloads must
// copy them first.
//
// Each client's seqs are emitted contiguously from zero — the nonce-aware
// mempool parks gapped seqs until the gap fills, so a generator's stream
// must all be submitted to the same replica. Give each replica its own
// generator over a disjoint client range (NewGeneratorAt) rather than
// striping one stream across replicas.
type Generator struct {
	payload     []byte
	firstClient uint64
	nextClient  uint64
	nextSeq     uint64
	numClients  uint64
}

// NewGenerator creates a generator producing payloadSize-byte requests from
// numClients synthetic clients with IDs starting at zero.
func NewGenerator(payloadSize, numClients int) *Generator {
	return NewGeneratorAt(payloadSize, numClients, 0)
}

// NewGeneratorAt is NewGenerator with the client-ID range starting at
// firstClient, so multiple generators can produce disjoint client
// populations (one per replica).
func NewGeneratorAt(payloadSize, numClients int, firstClient uint64) *Generator {
	if numClients < 1 {
		numClients = 1
	}
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(0xa5 ^ i)
	}
	return &Generator{payload: payload, firstClient: firstClient, numClients: uint64(numClients)}
}

// Next returns the next request in the stream.
func (g *Generator) Next() types.Request {
	r := types.Request{ClientID: g.firstClient + g.nextClient, Seq: g.nextSeq, Payload: g.payload}
	g.nextClient++
	if g.nextClient == g.numClients {
		g.nextClient = 0
		g.nextSeq++
	}
	return r
}

// Tracker records request submission times and computes confirmation
// latency when acknowledgments (executions) arrive.
type Tracker struct {
	submitted map[types.RequestID]time.Duration
	acked     map[types.RequestID]struct{}
	latency   *metrics.LatencyRecorder
	ackCount  int64
	start     time.Duration // samples before this are discarded (warmup)
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		submitted: make(map[types.RequestID]time.Duration),
		acked:     make(map[types.RequestID]struct{}),
		latency:   &metrics.LatencyRecorder{},
	}
}

// SetMeasureFrom discards latency samples for requests submitted before t
// (warmup cutoff).
func (t *Tracker) SetMeasureFrom(at time.Duration) { t.start = at }

// Submitted records a request's submission time.
func (t *Tracker) Submitted(id types.RequestID, at time.Duration) {
	if _, dup := t.submitted[id]; !dup {
		t.submitted[id] = at
	}
}

// Acked records a confirmation at time now; duplicates are ignored.
func (t *Tracker) Acked(id types.RequestID, now time.Duration) {
	if _, dup := t.acked[id]; dup {
		return
	}
	sub, ok := t.submitted[id]
	if !ok {
		return
	}
	t.acked[id] = struct{}{}
	t.ackCount++
	delete(t.submitted, id)
	if sub >= t.start {
		t.latency.Add(now - sub)
	}
	// Keep the acked set bounded; old entries cannot recur after their
	// submission record is gone.
	if len(t.acked) > 1<<21 {
		t.acked = make(map[types.RequestID]struct{})
	}
}

// AckCount returns the number of distinct acknowledged requests.
func (t *Tracker) AckCount() int64 { return t.ackCount }

// Outstanding returns the number of submitted-but-unacked requests.
func (t *Tracker) Outstanding() int { return len(t.submitted) }

// Latency exposes the recorded latency distribution.
func (t *Tracker) Latency() *metrics.LatencyRecorder { return t.latency }
