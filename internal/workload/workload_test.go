package workload

import (
	"testing"
	"time"

	"leopard/internal/types"
)

func TestAssignSkipsLeader(t *testing.T) {
	const n = 10
	for leader := types.ReplicaID(0); leader < n; leader++ {
		for c := uint64(0); c < 50; c++ {
			for s := uint64(0); s < 5; s++ {
				id := Assign(types.RequestID{Client: c, Seq: s}, n, leader)
				if id == leader {
					t.Fatalf("request assigned to the leader %d", leader)
				}
				if int(id) >= n {
					t.Fatalf("assignment %d out of range", id)
				}
			}
		}
	}
}

func TestAssignSpreadsLoad(t *testing.T) {
	const n = 7
	counts := make(map[types.ReplicaID]int)
	for c := uint64(0); c < 2000; c++ {
		counts[Assign(types.RequestID{Client: c, Seq: 1}, n, 0)]++
	}
	if len(counts) != n-1 {
		t.Fatalf("only %d replicas used of %d non-leaders", len(counts), n-1)
	}
	for id, got := range counts {
		if got < 200 || got > 500 {
			t.Errorf("replica %d handles %d of 2000: unbalanced", id, got)
		}
	}
}

func TestAssignDeterministic(t *testing.T) {
	id := types.RequestID{Client: 42, Seq: 7}
	a := Assign(id, 16, 3)
	b := Assign(id, 16, 3)
	if a != b {
		t.Fatal("assignment must be deterministic")
	}
}

func TestGeneratorUniqueIDs(t *testing.T) {
	g := NewGenerator(128, 8)
	seen := make(map[types.RequestID]bool)
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if len(r.Payload) != 128 {
			t.Fatalf("payload size %d", len(r.Payload))
		}
		if seen[r.ID()] {
			t.Fatalf("duplicate request id %+v at %d", r.ID(), i)
		}
		seen[r.ID()] = true
	}
}

func TestGeneratorMinimumClients(t *testing.T) {
	g := NewGenerator(16, 0) // clamped to 1
	a, b := g.Next(), g.Next()
	if a.ID() == b.ID() {
		t.Fatal("sequential requests collide with one client")
	}
}

func TestTrackerLatency(t *testing.T) {
	tr := NewTracker()
	id := types.RequestID{Client: 1, Seq: 1}
	tr.Submitted(id, 10*time.Millisecond)
	tr.Acked(id, 25*time.Millisecond)
	if tr.AckCount() != 1 {
		t.Fatalf("AckCount = %d", tr.AckCount())
	}
	if got := tr.Latency().Mean(); got != 15*time.Millisecond {
		t.Errorf("latency = %v, want 15ms", got)
	}
}

func TestTrackerDuplicateAcks(t *testing.T) {
	tr := NewTracker()
	id := types.RequestID{Client: 1, Seq: 2}
	tr.Submitted(id, 0)
	tr.Acked(id, time.Millisecond)
	tr.Acked(id, 2*time.Millisecond)
	if tr.AckCount() != 1 {
		t.Fatalf("duplicate ack counted: %d", tr.AckCount())
	}
}

func TestTrackerUnknownAckIgnored(t *testing.T) {
	tr := NewTracker()
	tr.Acked(types.RequestID{Client: 9, Seq: 9}, time.Millisecond)
	if tr.AckCount() != 0 {
		t.Fatal("ack without submission counted")
	}
}

func TestTrackerWarmupCutoff(t *testing.T) {
	tr := NewTracker()
	early := types.RequestID{Client: 1, Seq: 1}
	late := types.RequestID{Client: 1, Seq: 2}
	tr.Submitted(early, 0)
	tr.SetMeasureFrom(10 * time.Millisecond)
	tr.Submitted(late, 20*time.Millisecond)
	tr.Acked(early, 30*time.Millisecond)
	tr.Acked(late, 30*time.Millisecond)
	if tr.AckCount() != 2 {
		t.Fatalf("AckCount = %d", tr.AckCount())
	}
	// Only the late request contributes a latency sample.
	if tr.Latency().Count() != 1 {
		t.Fatalf("latency samples = %d, want 1", tr.Latency().Count())
	}
	if got := tr.Latency().Mean(); got != 10*time.Millisecond {
		t.Errorf("latency = %v, want 10ms", got)
	}
}

func TestTrackerOutstanding(t *testing.T) {
	tr := NewTracker()
	tr.Submitted(types.RequestID{Client: 1, Seq: 1}, 0)
	tr.Submitted(types.RequestID{Client: 1, Seq: 2}, 0)
	if tr.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d", tr.Outstanding())
	}
	tr.Acked(types.RequestID{Client: 1, Seq: 1}, time.Millisecond)
	if tr.Outstanding() != 1 {
		t.Fatalf("Outstanding after ack = %d", tr.Outstanding())
	}
}
