package mempool

import (
	"math/rand"
	"testing"
	"time"

	"leopard/internal/types"
)

// TestEvictionBiggestFootprintFirst pins the victim-selection order under
// byte pressure: the biggest queued entry goes first (freeing the most bytes
// per lost request), ties go to the newest arrival, and pending entries —
// including the extractable head of a client with requests in flight — are
// never victims.
func TestEvictionBiggestFootprintFirst(t *testing.T) {
	t.Run("biggest-first", func(t *testing.T) {
		anchor := sizedReq(1, 0, 100)
		small1 := sizedReq(1, 10, 100)
		big := sizedReq(1, 11, 1000)
		small2 := sizedReq(1, 12, 100)
		p := NewRequestPoolLimits(Limits{
			MaxBytes: anchor.Size() + small1.Size() + big.Size() + small2.Size(),
		})
		p.Admit(anchor, 0)
		for _, r := range []types.Request{small1, big, small2} {
			if v := p.Admit(r, 0); v != AdmittedQueued {
				t.Fatalf("seq %d: %v", r.Seq, v)
			}
		}
		// A gap-free arrival needs room; the big middle entry must be the
		// victim even though two smaller entries are newer and older.
		if v := p.Admit(sizedReq(2, 0, 100), 0); v != Admitted {
			t.Fatalf("pressure admission: %v", v)
		}
		if got := p.Stats().Evicted; got != 1 {
			t.Fatalf("evicted %d entries, want exactly the big one", got)
		}
		if _, ok := p.byID[big.ID()]; ok {
			t.Fatal("biggest queued entry survived eviction")
		}
		for _, r := range []types.Request{small1, small2} {
			if _, ok := p.byID[r.ID()]; !ok {
				t.Fatalf("small queued seq %d evicted while a bigger entry existed", r.Seq)
			}
		}
	})

	t.Run("tie-goes-to-newest", func(t *testing.T) {
		unit := sizedReq(0, 0, 100).Size()
		p := NewRequestPoolLimits(Limits{MaxBytes: 4 * unit})
		p.Admit(sizedReq(1, 0, 100), 0)
		for _, seq := range []uint64{10, 11, 12} {
			p.Admit(sizedReq(1, seq, 100), 0)
		}
		if v := p.Admit(sizedReq(2, 0, 100), 0); v != Admitted {
			t.Fatalf("pressure admission: %v", v)
		}
		if _, ok := p.byID[types.RequestID{Client: 1, Seq: 12}]; ok {
			t.Fatal("size tie must evict the newest queued entry")
		}
		for _, seq := range []uint64{10, 11} {
			if _, ok := p.byID[types.RequestID{Client: 1, Seq: seq}]; !ok {
				t.Fatalf("older tied entry seq %d evicted first", seq)
			}
		}
	})

	t.Run("in-flight-head-survives", func(t *testing.T) {
		unit := sizedReq(0, 0, 100).Size()
		p := NewRequestPoolLimits(Limits{MaxBytes: 3 * unit})
		// Client 1 has work in flight (extracted, unconfirmed) and a pending
		// head awaiting extraction.
		p.Admit(sizedReq(1, 0, 100), 0)
		if got, _ := p.Extract(1); len(got) != 1 {
			t.Fatal("extract failed")
		}
		p.Admit(sizedReq(1, 1, 100), 0) // the pending head
		p.Admit(sizedReq(2, 0, 100), 0)
		p.Admit(sizedReq(3, 0, 100), 0)
		// Pool full of pending entries: pressure must reject the newcomer,
		// never sacrifice client 1's extractable head.
		if v := p.Admit(sizedReq(4, 0, 100), 0); v != PoolFull {
			t.Fatalf("all-pending pressure: %v, want pool-full", v)
		}
		if _, ok := p.byID[types.RequestID{Client: 1, Seq: 1}]; !ok {
			t.Fatal("pending head of in-flight client was evicted")
		}
		if p.Stats().Evicted != 0 {
			t.Fatalf("evicted %d pending entries", p.Stats().Evicted)
		}
	})

	t.Run("rate-limit-precedes-eviction", func(t *testing.T) {
		// A rate-limited client must not evict anyone: the token check runs
		// before makeRoom, so pressure from a throttled client is free. At
		// the refill boundary the same arrival admits and the eviction fires.
		unit := sizedReq(0, 0, 100).Size()
		p := NewRequestPoolLimits(Limits{
			MaxBytes:   4 * unit,
			RatePerSec: 1000, // 1 token/ms
			RateBurst:  2,
		})
		p.Admit(sizedReq(1, 0, 100), 0)
		p.Admit(sizedReq(1, 5, 100), 0) // queued: the only evictable entry
		// Client 2 fills the pool and drains its 2-token burst.
		p.Admit(sizedReq(2, 0, 100), 0)
		p.Admit(sizedReq(2, 1, 100), 0)
		// Half a refill later: still throttled, and the queued entry — which
		// the byte budget would otherwise sacrifice — is untouched.
		if v := p.Admit(sizedReq(2, 2, 100), 500*time.Microsecond); v != RateLimited {
			t.Fatalf("throttled pressure: %v, want rate-limited", v)
		}
		if _, ok := p.byID[types.RequestID{Client: 1, Seq: 5}]; !ok {
			t.Fatal("rate-limited arrival evicted a queued entry")
		}
		if p.Stats().Evicted != 0 {
			t.Fatalf("rate-limited arrival drove %d evictions", p.Stats().Evicted)
		}
		// A full refill interval after the throttled attempt the token is
		// back; now the byte budget binds and the eviction happens.
		if v := p.Admit(sizedReq(2, 2, 100), 1500*time.Microsecond); v != Admitted {
			t.Fatalf("post-refill pressure admission: %v", v)
		}
		if _, ok := p.byID[types.RequestID{Client: 1, Seq: 5}]; ok {
			t.Fatal("post-refill admission did not evict the queued entry")
		}
	})
}

// TestEvictionRateLimitComposeDeterministic drives a seeded random workload
// of variable-size, rate-limited admissions through a byte-capped pool twice
// and asserts: identical verdict and extraction sequences run to run, the
// byte budget holds after every step, entries that reached pending are only
// ever removed by extraction or confirmation (never eviction), and
// rate-limited attempts never evict.
func TestEvictionRateLimitComposeDeterministic(t *testing.T) {
	type trace struct {
		verdicts    []Verdict
		extracted   []types.RequestID
		rateLimited int64
		evicted     int64
	}
	const maxBytes = 4096
	run := func(seed int64) trace {
		rng := rand.New(rand.NewSource(seed))
		p := NewRequestPoolLimits(Limits{
			MaxBytes:   maxBytes,
			RatePerSec: 300,
			RateBurst:  2,
		})
		var tr trace
		pending := make(map[types.RequestID]bool) // entries seen in pending
		now := time.Duration(0)
		for step := 0; step < 3000; step++ {
			now += time.Duration(rng.Intn(1000)) * time.Microsecond
			switch op := rng.Intn(10); {
			case op < 7: // admit a variable-size request
				r := types.Request{
					ClientID: uint64(rng.Intn(4)),
					Seq:      uint64(rng.Intn(64)),
					Payload:  make([]byte, 16+rng.Intn(512)),
				}
				evictedBefore := p.Stats().Evicted
				v := p.Admit(r, now)
				tr.verdicts = append(tr.verdicts, v)
				if v == Admitted {
					pending[r.ID()] = true
				}
				if v == RateLimited && p.Stats().Evicted != evictedBefore {
					t.Fatalf("step %d: rate-limited admission evicted %d entries",
						step, p.Stats().Evicted-evictedBefore)
				}
			case op < 9: // extract a few
				got, _ := p.Extract(rng.Intn(4))
				for _, r := range got {
					delete(pending, r.ID())
					tr.extracted = append(tr.extracted, r.ID())
				}
			default: // confirm a random id
				id := types.RequestID{Client: uint64(rng.Intn(4)), Seq: uint64(rng.Intn(64))}
				p.MarkConfirmed(id)
				delete(pending, id)
			}
			if p.Bytes() > maxBytes {
				t.Fatalf("step %d: pool at %d bytes, budget %d", step, p.Bytes(), maxBytes)
			}
			for id := range pending {
				if _, ok := p.byID[id]; !ok {
					t.Fatalf("step %d: pending entry %v vanished without extract/confirm", step, id)
				}
			}
		}
		tr.rateLimited = p.Stats().RateLimited
		tr.evicted = p.Stats().Evicted
		return tr
	}

	for seed := int64(1); seed <= 3; seed++ {
		a, b := run(seed), run(seed)
		if len(a.verdicts) != len(b.verdicts) || len(a.extracted) != len(b.extracted) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range a.verdicts {
			if a.verdicts[i] != b.verdicts[i] {
				t.Fatalf("seed %d: verdict %d diverged: %v vs %v", seed, i, a.verdicts[i], b.verdicts[i])
			}
		}
		for i := range a.extracted {
			if a.extracted[i] != b.extracted[i] {
				t.Fatalf("seed %d: extraction %d diverged: %v vs %v", seed, i, a.extracted[i], b.extracted[i])
			}
		}
		if a.rateLimited == 0 || a.evicted == 0 {
			t.Fatalf("seed %d: workload exercised %d rate limits and %d evictions — both must fire",
				seed, a.rateLimited, a.evicted)
		}
	}
}
