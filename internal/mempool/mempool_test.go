package mempool

import (
	"testing"
	"time"

	"leopard/internal/types"
)

func req(client, seq uint64) types.Request {
	return types.Request{ClientID: client, Seq: seq, Payload: []byte("p")}
}

func TestRequestPoolFIFO(t *testing.T) {
	p := NewRequestPool()
	for i := uint64(0); i < 10; i++ {
		if !p.Add(req(1, i), 0) {
			t.Fatalf("request %d rejected", i)
		}
	}
	if p.Len() != 10 {
		t.Fatalf("Len = %d", p.Len())
	}
	out, _ := p.Extract(4)
	if len(out) != 4 {
		t.Fatalf("extracted %d", len(out))
	}
	for i, r := range out {
		if r.Seq != uint64(i) {
			t.Errorf("position %d holds seq %d; want FIFO order", i, r.Seq)
		}
	}
	if p.Len() != 6 {
		t.Errorf("Len after extract = %d", p.Len())
	}
}

func TestRequestPoolDedup(t *testing.T) {
	p := NewRequestPool()
	if !p.Add(req(1, 1), 0) {
		t.Fatal("first add rejected")
	}
	if p.Add(req(1, 1), 0) {
		t.Fatal("duplicate pending request admitted")
	}
	out, _ := p.Extract(1)
	if len(out) != 1 {
		t.Fatal("extract failed")
	}
	// Extracted but not confirmed: may be re-added (retransmission).
	if !p.Add(req(1, 1), 0) {
		t.Fatal("re-add after extract rejected")
	}
	p.Extract(1)
	p.MarkConfirmed(req(1, 1).ID())
	if p.Add(req(1, 1), 0) {
		t.Fatal("confirmed request re-admitted")
	}
}

func TestRequestPoolOldestTimestamp(t *testing.T) {
	p := NewRequestPool()
	p.Add(req(1, 1), 5*time.Millisecond)
	p.Add(req(1, 2), 9*time.Millisecond)
	_, oldest := p.Extract(2)
	if oldest != 5*time.Millisecond {
		t.Errorf("oldest = %v, want 5ms", oldest)
	}
	if _, oldest := p.Extract(1); oldest != 0 {
		t.Errorf("empty extract oldest = %v, want 0", oldest)
	}
}

func TestRequestPoolBytes(t *testing.T) {
	p := NewRequestPool()
	r := types.Request{ClientID: 1, Seq: 1, Payload: make([]byte, 100)}
	p.Add(r, 0)
	if p.Bytes() != r.Size() {
		t.Errorf("Bytes = %d, want %d", p.Bytes(), r.Size())
	}
	p.Extract(1)
	if p.Bytes() != 0 {
		t.Errorf("Bytes after drain = %d", p.Bytes())
	}
}

func TestRequestPoolExtractBounds(t *testing.T) {
	p := NewRequestPool()
	if out, _ := p.Extract(0); out != nil {
		t.Error("Extract(0) must return nil")
	}
	if out, _ := p.Extract(-1); out != nil {
		t.Error("Extract(-1) must return nil")
	}
	p.Add(req(1, 1), 0)
	out, _ := p.Extract(100)
	if len(out) != 1 {
		t.Errorf("Extract over-len returned %d", len(out))
	}
}

func datablock(gen types.ReplicaID, counter uint64) (*types.Datablock, types.Hash) {
	db := &types.Datablock{Ref: types.DatablockRef{Generator: gen, Counter: counter}}
	var h types.Hash
	h[0] = byte(gen)
	h[1] = byte(counter)
	return db, h
}

func TestDatablockPoolAddGetRemove(t *testing.T) {
	p := NewDatablockPool()
	db, h := datablock(1, 1)
	if !p.Add(h, db) {
		t.Fatal("add rejected")
	}
	if got, ok := p.Get(h); !ok || got != db {
		t.Fatal("get failed")
	}
	if !p.Has(h) {
		t.Fatal("Has = false")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.Remove(h)
	if p.Has(h) || p.Len() != 0 {
		t.Fatal("remove did not clear")
	}
	// After removal, the same (generator, counter) may be re-added: the
	// pool is storage, rate limiting happens before GC.
	if !p.Add(h, db) {
		t.Fatal("re-add after remove rejected")
	}
}

func TestDatablockPoolDuplicateCounter(t *testing.T) {
	p := NewDatablockPool()
	db1, h1 := datablock(1, 7)
	p.Add(h1, db1)
	// Same (generator, counter), different digest: the repetitive-counter
	// rule from Leopard Alg. 1 must reject it.
	db2 := &types.Datablock{Ref: db1.Ref, Requests: []types.Request{req(9, 9)}}
	h2 := types.Hash{0xff}
	if p.Add(h2, db2) {
		t.Fatal("duplicate (generator, counter) admitted")
	}
	// Different counter is fine.
	db3, h3 := datablock(1, 8)
	if !p.Add(h3, db3) {
		t.Fatal("distinct counter rejected")
	}
}

func TestDatablockPoolDigests(t *testing.T) {
	p := NewDatablockPool()
	want := map[types.Hash]bool{}
	for i := uint64(0); i < 5; i++ {
		db, h := datablock(2, i)
		p.Add(h, db)
		want[h] = true
	}
	got := p.Digests()
	if len(got) != 5 {
		t.Fatalf("Digests returned %d", len(got))
	}
	for _, h := range got {
		if !want[h] {
			t.Errorf("unexpected digest %v", h)
		}
	}
}
