package mempool

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"leopard/internal/types"
)

func sizedReq(client, seq uint64, payload int) types.Request {
	return types.Request{ClientID: client, Seq: seq, Payload: make([]byte, payload)}
}

// drain extracts every pending request.
func drain(p *RequestPool) []types.Request {
	out, _ := p.Extract(p.Len())
	return out
}

func TestNonceGapsFilledOutOfOrder(t *testing.T) {
	p := NewRequestPool()
	steps := []struct {
		seq         uint64
		want        Verdict
		len, queued int
	}{
		{0, Admitted, 1, 0},         // anchors the client
		{3, AdmittedQueued, 1, 1},   // gap: 1, 2 missing
		{5, AdmittedQueued, 1, 2},   // still gapped
		{2, AdmittedQueued, 1, 3},   // fills part of the gap, 1 still missing
		{1, Admitted, 4, 1},         // closes the gap: 1 promotes 2 and 3; 5 stays
		{4, Admitted, 6, 0},         // closes the rest: 4 promotes 5
		{4, DupLive, 6, 0},          // live duplicate
		{100, AdmittedQueued, 6, 1}, // far-future gap queues but is admitted
	}
	for i, s := range steps {
		if got := p.Admit(req(1, s.seq), 0); got != s.want {
			t.Fatalf("step %d (seq %d): verdict %v, want %v", i, s.seq, got, s.want)
		}
		if p.Len() != s.len || p.Queued() != s.queued {
			t.Fatalf("step %d (seq %d): len=%d queued=%d, want %d/%d",
				i, s.seq, p.Len(), p.Queued(), s.len, s.queued)
		}
	}
	// Promotion preserved per-client sequence order.
	got := drain(p)
	for i, r := range got {
		if r.Seq != uint64(i) {
			t.Fatalf("extract %d: seq %d, want %d", i, r.Seq, i)
		}
	}
}

func TestGapFilledByConfirmation(t *testing.T) {
	// Seq 1 confirms via another replica's datablock without ever being
	// submitted here; the local queued seq 2 must still promote.
	p := NewRequestPool()
	p.Admit(req(7, 0), 0)
	if v := p.Admit(req(7, 2), 0); v != AdmittedQueued {
		t.Fatalf("seq 2 verdict %v, want queued", v)
	}
	p.MarkConfirmed(types.RequestID{Client: 7, Seq: 1})
	if p.Len() != 2 || p.Queued() != 0 {
		t.Fatalf("after confirm of gap seq: len=%d queued=%d, want 2/0", p.Len(), p.Queued())
	}
	// And a later submission of the confirmed seq is rejected.
	if v := p.Admit(req(7, 1), 0); v != DupConfirmed {
		t.Fatalf("confirmed seq re-admission verdict %v", v)
	}
}

func TestDuplicateSuppressionAcrossConfirmAndEvict(t *testing.T) {
	lim := Limits{MaxBytes: 5 * req(0, 0).Size()}
	p := NewRequestPoolLimits(lim)

	// Client 1: one pending anchor + three gapped entries.
	p.Admit(req(1, 0), 0)
	for _, seq := range []uint64{10, 11, 12} {
		if v := p.Admit(req(1, seq), 0); v != AdmittedQueued {
			t.Fatalf("seq %d: %v", seq, v)
		}
	}
	// Live duplicates are suppressed in both lists.
	if v := p.Admit(req(1, 0), 0); v != DupLive {
		t.Fatalf("pending dup verdict %v", v)
	}
	if v := p.Admit(req(1, 11), 0); v != DupLive {
		t.Fatalf("queued dup verdict %v", v)
	}

	// A gap-free arrival under byte pressure evicts the newest queued
	// entry (seq 12), which is then re-admittable — eviction is not
	// confirmation.
	p.Admit(req(2, 0), 0)
	if v := p.Admit(req(2, 1), 0); v != Admitted {
		t.Fatalf("pressure admission verdict %v", v)
	}
	if got := p.Stats().Evicted; got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
	if _, ok := p.byID[types.RequestID{Client: 1, Seq: 12}]; ok {
		t.Fatal("newest queued entry not the eviction victim")
	}
	p.Extract(p.Len()) // make room
	if v := p.Admit(req(1, 12), 0); v != AdmittedQueued {
		t.Fatalf("evicted entry re-admission verdict %v", v)
	}

	// Confirmation suppresses permanently: exact ids as DupConfirmed,
	// below-watermark seqs as StaleSeq.
	p.MarkConfirmed(types.RequestID{Client: 2, Seq: 0})
	p.MarkConfirmed(types.RequestID{Client: 2, Seq: 1})
	if v := p.Admit(req(2, 1), 0); v != StaleSeq {
		t.Fatalf("confirmed-watermark re-admission verdict %v", v)
	}
	// Confirming a live queued entry drops it (10 and 11 stay gapped).
	p.MarkConfirmed(types.RequestID{Client: 1, Seq: 12})
	if p.Queued() != 2 {
		t.Fatalf("queued = %d after confirming the queued entry, want 2", p.Queued())
	}
	if v := p.Admit(req(1, 12), 0); v != DupConfirmed {
		t.Fatalf("confirmed queued re-admission verdict %v", v)
	}
}

func TestRateLimitRefillBoundaries(t *testing.T) {
	lim := Limits{RatePerSec: 1000, RateBurst: 2} // 1 token/ms, burst 2
	newPool := func() *RequestPool { return NewRequestPoolLimits(lim) }

	t.Run("burst-then-deny", func(t *testing.T) {
		p := newPool()
		for seq := uint64(0); seq < 2; seq++ {
			if v := p.Admit(req(1, seq), 0); v != Admitted {
				t.Fatalf("burst admission %d: %v", seq, v)
			}
		}
		if v := p.Admit(req(1, 2), 0); v != RateLimited {
			t.Fatalf("over-burst verdict %v", v)
		}
		if p.Stats().RateLimited != 1 || p.Stats().Rejected != 1 {
			t.Fatalf("stats %+v", p.Stats())
		}
	})
	t.Run("just-before-refill", func(t *testing.T) {
		p := newPool()
		p.Admit(req(1, 0), 0)
		p.Admit(req(1, 1), 0)
		if v := p.Admit(req(1, 2), 999*time.Microsecond); v != RateLimited {
			t.Fatalf("at t-1µs: %v, want rate-limited", v)
		}
	})
	t.Run("at-refill", func(t *testing.T) {
		p := newPool()
		p.Admit(req(1, 0), 0)
		p.Admit(req(1, 1), 0)
		if v := p.Admit(req(1, 2), time.Millisecond); v != Admitted {
			t.Fatalf("at refill boundary: %v, want admitted", v)
		}
		// The refill bought exactly one token.
		if v := p.Admit(req(1, 3), time.Millisecond); v != RateLimited {
			t.Fatalf("after spending the refilled token: %v", v)
		}
	})
	t.Run("burst-caps-refill", func(t *testing.T) {
		p := newPool()
		p.Admit(req(1, 0), 0)
		p.Admit(req(1, 1), 0)
		// A long idle period refills to the burst cap, not beyond.
		now := time.Second
		for seq := uint64(2); seq < 4; seq++ {
			if v := p.Admit(req(1, seq), now); v != Admitted {
				t.Fatalf("post-idle admission %d: %v", seq, v)
			}
		}
		if v := p.Admit(req(1, 4), now); v != RateLimited {
			t.Fatalf("burst cap not enforced: %v", v)
		}
	})
	t.Run("per-client", func(t *testing.T) {
		p := newPool()
		p.Admit(req(1, 0), 0)
		p.Admit(req(1, 1), 0)
		if v := p.Admit(req(1, 2), 0); v != RateLimited {
			t.Fatalf("client 1: %v", v)
		}
		// Client 2's bucket is untouched.
		if v := p.Admit(req(2, 0), 0); v != Admitted {
			t.Fatalf("client 2: %v", v)
		}
	})
}

func TestEvictionUnderBytePressure(t *testing.T) {
	const payload = 100
	unit := sizedReq(0, 0, payload).Size()
	p := NewRequestPoolLimits(Limits{MaxBytes: 5 * unit})

	p.Admit(sizedReq(1, 0, payload), 0)
	for _, seq := range []uint64{10, 11, 12, 13} {
		if v := p.Admit(sizedReq(1, seq, payload), 0); v != AdmittedQueued {
			t.Fatalf("seq %d: %v", seq, v)
		}
	}
	if p.Bytes() != 5*unit {
		t.Fatalf("bytes = %d, want %d", p.Bytes(), 5*unit)
	}

	// A gapped arrival would itself be lowest priority: rejected outright,
	// nothing evicted.
	p2 := NewRequestPoolLimits(Limits{MaxBytes: 2 * unit})
	p2.Admit(sizedReq(1, 0, payload), 0)
	p2.Admit(sizedReq(1, 5, payload), 0) // queued, pool now full
	if v := p2.Admit(sizedReq(1, 9, payload), 0); v != PoolFull {
		t.Fatalf("gapped arrival at full pool: %v, want pool-full", v)
	}
	if p2.Stats().Evicted != 0 {
		t.Fatalf("gapped arrival evicted %d entries", p2.Stats().Evicted)
	}

	// Gap-free arrivals evict newest-queued first, oldest-queued last.
	if v := p.Admit(sizedReq(3, 0, payload), 0); v != Admitted {
		t.Fatalf("pressure admission: %v", v)
	}
	if _, ok := p.byID[types.RequestID{Client: 1, Seq: 13}]; ok {
		t.Fatal("seq 13 (newest queued) should be the first victim")
	}
	if _, ok := p.byID[types.RequestID{Client: 1, Seq: 10}]; !ok {
		t.Fatal("seq 10 (oldest queued) evicted too early")
	}

	// When only pending entries remain, pressure rejects the newcomer
	// rather than evicting older gap-free work.
	p3 := NewRequestPoolLimits(Limits{MaxBytes: 2 * unit})
	p3.Admit(sizedReq(1, 0, payload), 0)
	p3.Admit(sizedReq(2, 0, payload), 0)
	if v := p3.Admit(sizedReq(3, 0, payload), 0); v != PoolFull {
		t.Fatalf("all-pending full pool: %v, want pool-full", v)
	}
	if p3.Len() != 2 {
		t.Fatalf("pending entries evicted under pressure: len=%d", p3.Len())
	}

	// MaxRequests binds the same way as MaxBytes.
	p4 := NewRequestPoolLimits(Limits{MaxRequests: 2})
	p4.Admit(req(1, 0), 0)
	p4.Admit(req(1, 5), 0) // queued
	if v := p4.Admit(req(2, 0), 0); v != Admitted {
		t.Fatalf("count-pressure admission: %v", v)
	}
	if p4.Queued() != 0 {
		t.Fatal("count pressure did not evict the queued entry")
	}
}

// TestPriorityOrderTotalAndDeterministic drives two identical pools through
// a seeded random workload and asserts (a) the priority order is total:
// every live entry sits in exactly one of the two priority classes at all
// times, (b) it is deterministic: both pools extract identical sequences,
// and (c) promotion respects per-client sequence order for first-time
// admissions.
func TestPriorityOrderTotalAndDeterministic(t *testing.T) {
	run := func(seed int64) []types.Request {
		rng := rand.New(rand.NewSource(seed))
		p := NewRequestPoolLimits(Limits{MaxRequests: 64})
		extracted := make(map[types.RequestID]bool)
		var out []types.Request
		for step := 0; step < 4000; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // admit
				r := req(uint64(rng.Intn(4)), uint64(rng.Intn(40)))
				if extracted[r.ID()] {
					continue // keep first-admission order observable
				}
				p.Admit(r, time.Duration(step))
			case op < 8: // extract a few
				got, _ := p.Extract(rng.Intn(5))
				for _, r := range got {
					extracted[r.ID()] = true
				}
				out = append(out, got...)
			default: // confirm a random id
				p.MarkConfirmed(types.RequestID{Client: uint64(rng.Intn(4)), Seq: uint64(rng.Intn(40))})
			}
			if live := len(p.byID); live != p.Len()+p.Queued() {
				t.Fatalf("step %d: %d live entries but %d pending + %d queued",
					step, live, p.Len(), p.Queued())
			}
		}
		got, _ := p.Extract(p.Len())
		return append(out, got...)
	}

	for seed := int64(1); seed <= 3; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: extraction lengths differ: %d vs %d", seed, len(a), len(b))
		}
		lastSeq := map[uint64]uint64{}
		for i := range a {
			if a[i].ID() != b[i].ID() {
				t.Fatalf("seed %d: extraction order diverged at %d: %v vs %v",
					seed, i, a[i].ID(), b[i].ID())
			}
			if last, ok := lastSeq[a[i].ClientID]; ok && a[i].Seq <= last {
				t.Fatalf("seed %d: client %d extracted seq %d after %d",
					seed, a[i].ClientID, a[i].Seq, last)
			}
			lastSeq[a[i].ClientID] = a[i].Seq
		}
	}
}

// TestConfirmedBoundedUnderByzantineReplay is the regression for the old
// pool's unbounded confirmed set: a Byzantine client replaying old ids, or
// confirmations arriving with arbitrary gaps, must not grow per-client or
// per-pool bookkeeping without bound.
func TestConfirmedBoundedUnderByzantineReplay(t *testing.T) {
	lim := Limits{ConfirmedWindow: 64, MaxClients: 32}
	p := NewRequestPoolLimits(lim)

	// Out-of-order confirmations with gaps: the sparse set must stay
	// within the window while low seqs keep folding into the watermark.
	for seq := uint64(0); seq < 10_000; seq += 2 {
		p.MarkConfirmed(types.RequestID{Client: 1, Seq: seq})
	}
	c := p.clients[1]
	if len(c.confirmed) > lim.ConfirmedWindow {
		t.Fatalf("confirmed set grew to %d (window %d)", len(c.confirmed), lim.ConfirmedWindow)
	}

	// A replay storm of consumed ids is rejected without any growth.
	p.MarkConfirmed(types.RequestID{Client: 1, Seq: 1}) // base is now >= 2
	before := len(c.confirmed)
	for i := 0; i < 100_000; i++ {
		if v := p.Admit(req(1, uint64(i%2)), 0); v.OK() {
			t.Fatalf("replayed consumed id admitted at iteration %d: %v", i, v)
		}
		p.MarkConfirmed(types.RequestID{Client: 1, Seq: uint64(i % 2)})
	}
	if len(c.confirmed) != before || p.Len() != 0 || len(p.byID) != 0 {
		t.Fatalf("replay storm changed state: confirmed %d→%d, live %d",
			before, len(c.confirmed), len(p.byID))
	}

	// A flood of distinct client ids (confirmations for clients this
	// replica never served) keeps the state table at the cap: idle states
	// are swept wholesale when it fills.
	for id := uint64(100); id < 100+10*uint64(lim.MaxClients); id++ {
		p.MarkConfirmed(types.RequestID{Client: id, Seq: 0})
	}
	if len(p.clients) > lim.MaxClients {
		t.Fatalf("client states grew to %d (cap %d)", len(p.clients), lim.MaxClients)
	}

	// Forgetting furthest-ahead confirmations fails open: the replay is
	// re-admitted (and would re-run consensus harmlessly), never lost low.
	p2 := NewRequestPoolLimits(Limits{ConfirmedWindow: 4})
	for _, seq := range []uint64{10, 20, 30, 40, 50, 60} { // overflows window
		p2.MarkConfirmed(types.RequestID{Client: 5, Seq: seq})
	}
	c2 := p2.clients[5]
	if len(c2.confirmed) > 4 {
		t.Fatalf("window overflow not enforced: %d", len(c2.confirmed))
	}
	if _, ok := c2.confirmed[20]; !ok {
		t.Fatal("low confirmed seq was forgotten before high ones")
	}
}

func TestVerdictStrings(t *testing.T) {
	for v := Admitted; v <= BadSignature+1; v++ {
		if v.String() == "" {
			t.Fatalf("verdict %d has no string", v)
		}
	}
	if Admitted.OK() != true || AdmittedQueued.OK() != true || PoolFull.OK() {
		t.Fatal("OK() misclassifies verdicts")
	}
}

func TestAdmissionStats(t *testing.T) {
	p := NewRequestPool()
	p.Admit(req(1, 0), 0)
	p.Admit(req(1, 0), 0) // dup
	s := p.Stats()
	if s.Admitted != 1 || s.Rejected != 1 {
		t.Fatalf("stats %+v", s)
	}
	if fmt.Sprintf("%v", DupLive) != "duplicate" {
		t.Fatal("verdict formatting")
	}
}
