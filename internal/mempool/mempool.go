// Package mempool buffers pending client requests (FIFO with dedup) and
// datablocks awaiting consensus. Both pools are used by the protocol state
// machines, which are single-threaded, so the pools are not synchronized.
package mempool

import (
	"container/list"
	"time"

	"leopard/internal/types"
)

// entry pairs a pending request with its enqueue time, so batching code can
// report how long requests waited (Table IV's generation stage).
type entry struct {
	req types.Request
	at  time.Duration
}

// RequestPool is a FIFO of pending requests with duplicate suppression.
// The zero value is not usable; create with NewRequestPool.
type RequestPool struct {
	fifo    *list.List
	present map[types.RequestID]struct{}
	// confirmed remembers ids whose requests were already confirmed so a
	// late duplicate is not re-admitted. Bounded by pruning in Confirm.
	confirmed map[types.RequestID]struct{}
	maxSeen   int
	bytes     int
}

// NewRequestPool creates an empty pool.
func NewRequestPool() *RequestPool {
	return &RequestPool{
		fifo:      list.New(),
		present:   make(map[types.RequestID]struct{}),
		confirmed: make(map[types.RequestID]struct{}),
	}
}

// Add enqueues a request at time now unless it is already pending or
// confirmed. It reports whether the request was admitted.
func (p *RequestPool) Add(r types.Request, now time.Duration) bool {
	id := r.ID()
	if _, ok := p.present[id]; ok {
		return false
	}
	if _, ok := p.confirmed[id]; ok {
		return false
	}
	p.present[id] = struct{}{}
	p.fifo.PushBack(entry{req: r, at: now})
	p.bytes += r.Size()
	if p.fifo.Len() > p.maxSeen {
		p.maxSeen = p.fifo.Len()
	}
	return true
}

// Len returns the number of pending requests.
func (p *RequestPool) Len() int { return p.fifo.Len() }

// Bytes returns the total wire size of pending requests.
func (p *RequestPool) Bytes() int { return p.bytes }

// Extract removes and returns up to max requests in FIFO order, along with
// the enqueue time of the oldest extracted request (zero when none).
func (p *RequestPool) Extract(max int) ([]types.Request, time.Duration) {
	if max <= 0 {
		return nil, 0
	}
	n := max
	if l := p.fifo.Len(); l < n {
		n = l
	}
	var oldest time.Duration
	out := make([]types.Request, 0, n)
	for i := 0; i < n; i++ {
		front := p.fifo.Front()
		e := front.Value.(entry)
		p.fifo.Remove(front)
		delete(p.present, e.req.ID())
		p.bytes -= e.req.Size()
		if i == 0 {
			oldest = e.at
		}
		out = append(out, e.req)
	}
	return out, oldest
}

// MarkConfirmed records that a request finished consensus, so future
// duplicates are rejected. The confirmed set is pruned at pruneLimit.
func (p *RequestPool) MarkConfirmed(id types.RequestID) {
	const pruneLimit = 1 << 20
	if len(p.confirmed) >= pruneLimit {
		// Reset wholesale: clients that resubmit after this window re-run
		// consensus harmlessly (consensus output dedup is the backstop).
		p.confirmed = make(map[types.RequestID]struct{})
	}
	p.confirmed[id] = struct{}{}
}

// DatablockPool stores accepted datablocks, indexed both by digest and by
// (generator, counter) for duplicate-counter suppression (Leopard Alg. 1).
//
// Stored blocks may have been decoded zero-copy: their request payloads can
// sub-slice the wire frame (or erasure-decoded buffer) they arrived in, and
// retaining the block here is what keeps that buffer alive — the frame is
// essentially the block, so this pins no meaningful extra memory. The pool
// never mutates blocks, preserving the codec's borrow contract.
type DatablockPool struct {
	byHash map[types.Hash]*types.Datablock
	byRef  map[types.DatablockRef]types.Hash
}

// NewDatablockPool creates an empty pool.
func NewDatablockPool() *DatablockPool {
	return &DatablockPool{
		byHash: make(map[types.Hash]*types.Datablock),
		byRef:  make(map[types.DatablockRef]types.Hash),
	}
}

// Add stores the datablock under its digest. It reports false if a
// datablock with the same (generator, counter) or digest already exists.
func (p *DatablockPool) Add(h types.Hash, d *types.Datablock) bool {
	if _, ok := p.byHash[h]; ok {
		return false
	}
	if _, ok := p.byRef[d.Ref]; ok {
		return false
	}
	p.byHash[h] = d
	p.byRef[d.Ref] = h
	return true
}

// Get returns the datablock with digest h, if present.
func (p *DatablockPool) Get(h types.Hash) (*types.Datablock, bool) {
	d, ok := p.byHash[h]
	return d, ok
}

// Has reports whether digest h is present.
func (p *DatablockPool) Has(h types.Hash) bool {
	_, ok := p.byHash[h]
	return ok
}

// Remove deletes the datablock with digest h (garbage collection).
func (p *DatablockPool) Remove(h types.Hash) {
	if d, ok := p.byHash[h]; ok {
		delete(p.byRef, d.Ref)
		delete(p.byHash, h)
	}
}

// Len returns the number of stored datablocks.
func (p *DatablockPool) Len() int { return len(p.byHash) }

// Digests returns all stored digests in unspecified order; callers that
// need determinism must sort.
func (p *DatablockPool) Digests() []types.Hash {
	out := make([]types.Hash, 0, len(p.byHash))
	for h := range p.byHash {
		out = append(out, h)
	}
	return out
}
