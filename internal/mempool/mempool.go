// Package mempool buffers pending client requests and datablocks awaiting
// consensus. The request pool is prioritized and nonce-aware: per client it
// keeps a pending list (sequence numbers reachable from what it has seen,
// extractable) and a queued list (nonce-gapped arrivals that become pending
// when the gap fills), under byte/count admission budgets, per-client
// token-bucket rate limits, and eviction of the lowest-priority entries
// under pressure. Both pools are used by the protocol state machines, which
// are single-threaded, so the pools are not synchronized.
package mempool

import (
	"container/list"
	"time"

	"leopard/internal/types"
)

// Default admission budgets. Generous on purpose: protocol state machines
// construct pools with NewRequestPool() and expect saturation workloads
// (tens of thousands of outstanding synthetic requests) to be admitted;
// deployments that want a tight front door pass explicit Limits.
const (
	DefaultMaxBytes        = 256 << 20
	DefaultMaxRequests     = 1 << 20
	DefaultMaxPerClient    = 1 << 16
	DefaultMaxClients      = 1 << 16
	DefaultConfirmedWindow = 4096
)

// Limits bounds a RequestPool. The zero value of every field selects its
// default; rate limiting is off unless RatePerSec is set.
type Limits struct {
	// MaxBytes bounds the total wire size of live (pending + queued)
	// requests. Admission under pressure evicts the newest queued entries
	// to make room for gap-free arrivals; when nothing evictable remains,
	// new requests are rejected.
	MaxBytes int
	// MaxRequests bounds the number of live requests.
	MaxRequests int
	// MaxPerClient bounds one client's live requests.
	MaxPerClient int
	// MaxClients bounds the number of per-client states retained
	// (including pure dedup bookkeeping for clients with no live
	// requests). At the cap, idle states are discarded wholesale — their
	// clients fall back to consensus-output dedup.
	MaxClients int
	// ConfirmedWindow bounds the out-of-order confirmed-seq set kept per
	// client above its contiguous watermark. Overflow forgets the
	// furthest-ahead confirmations: a replay of those re-runs consensus
	// harmlessly (consensus-output dedup is the backstop), whereas
	// forgetting low seqs could reject requests forever.
	ConfirmedWindow int
	// RatePerSec, when positive, enables a per-client token bucket:
	// admissions drain one token, refilled at this rate up to RateBurst.
	RatePerSec float64
	// RateBurst is the bucket capacity; zero with RatePerSec set means 32.
	RateBurst int
}

func (l Limits) withDefaults() Limits {
	if l.MaxBytes <= 0 {
		l.MaxBytes = DefaultMaxBytes
	}
	if l.MaxRequests <= 0 {
		l.MaxRequests = DefaultMaxRequests
	}
	if l.MaxPerClient <= 0 {
		l.MaxPerClient = DefaultMaxPerClient
	}
	if l.MaxClients <= 0 {
		l.MaxClients = DefaultMaxClients
	}
	if l.ConfirmedWindow <= 0 {
		l.ConfirmedWindow = DefaultConfirmedWindow
	}
	if l.RatePerSec > 0 && l.RateBurst <= 0 {
		l.RateBurst = 32
	}
	return l
}

// Verdict is the outcome of one admission attempt.
type Verdict uint8

const (
	// Admitted: the request is pending and extractable.
	Admitted Verdict = iota
	// AdmittedQueued: admitted, but parked behind a nonce gap; it becomes
	// pending when the gap fills (or the gap's seqs confirm elsewhere).
	AdmittedQueued
	// DupLive: an identical request is already pending or queued.
	DupLive
	// DupConfirmed: the request already finished consensus.
	DupConfirmed
	// StaleSeq: the sequence number is below the client's consumed
	// watermark — superseded by a later committed request.
	StaleSeq
	// RateLimited: the client's token bucket is empty.
	RateLimited
	// PoolFull: the pool's byte/count/client budgets are exhausted and the
	// request did not outrank anything evictable.
	PoolFull
	// ClientFull: the client's live-request budget is exhausted.
	ClientFull
	// BadSignature is produced by authenticated admission layers
	// (leopard.Node.SubmitSigned), never by the pool itself.
	BadSignature
)

// OK reports whether the request entered the pool.
func (v Verdict) OK() bool { return v <= AdmittedQueued }

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case AdmittedQueued:
		return "queued"
	case DupLive:
		return "duplicate"
	case DupConfirmed:
		return "confirmed"
	case StaleSeq:
		return "stale-seq"
	case RateLimited:
		return "rate-limited"
	case PoolFull:
		return "pool-full"
	case ClientFull:
		return "client-full"
	case BadSignature:
		return "bad-signature"
	default:
		return "unknown"
	}
}

// entry pairs a live request with its enqueue time (so batching code can
// report how long requests waited — Table IV's generation stage) and its
// position in the priority order.
type entry struct {
	req    types.Request
	at     time.Duration
	client *clientState
	elem   *list.Element // in pending or queued
	queued bool
}

// clientState is the per-client nonce ledger and rate limiter.
type clientState struct {
	id   uint64
	init bool
	// base is the consumed watermark: every seq below it was confirmed or
	// superseded by a later confirmed seq, so submissions below it are
	// rejected as stale.
	base uint64
	// frontier is the highest seq reachable without a gap: every seq in
	// [base, frontier] was admitted or confirmed at some point. Arrivals
	// at or below frontier+1 go to pending; above it they queue.
	frontier uint64
	// confirmed holds confirmed seqs above base (out-of-order
	// confirmations), bounded by Limits.ConfirmedWindow.
	confirmed map[uint64]struct{}
	// gapped indexes this client's queued entries by seq for promotion.
	gapped map[uint64]*entry
	live   int

	tokens     float64
	lastRefill time.Duration
	tokensInit bool
}

// PoolStats are the pool's monotonic admission counters.
type PoolStats struct {
	Admitted    int64
	Rejected    int64 // every non-OK verdict, including RateLimited
	RateLimited int64
	Evicted     int64
}

// RequestPool is a prioritized, nonce-aware request pool with duplicate
// suppression. The zero value is not usable; create with NewRequestPool or
// NewRequestPoolLimits.
//
// Priority is total and deterministic: gap-free (pending) entries outrank
// nonce-gapped (queued) entries, and within each class earlier promotion
// outranks later. Extraction takes the highest-priority entries; eviction
// under pressure removes the lowest-priority ones.
type RequestPool struct {
	lim     Limits
	pending *list.List // *entry in promotion order (front = extract next)
	queued  *list.List // *entry in admission order (back = evict first)
	byID    map[types.RequestID]*entry
	clients map[uint64]*clientState
	bytes   int
	stats   PoolStats
}

// NewRequestPool creates an empty pool with default limits.
func NewRequestPool() *RequestPool { return NewRequestPoolLimits(Limits{}) }

// NewRequestPoolLimits creates an empty pool bounded by lim.
func NewRequestPoolLimits(lim Limits) *RequestPool {
	return &RequestPool{
		lim:     lim.withDefaults(),
		pending: list.New(),
		queued:  list.New(),
		byID:    make(map[types.RequestID]*entry),
		clients: make(map[uint64]*clientState),
	}
}

// Add enqueues a request at time now. It reports whether the request was
// admitted (pending or queued); Admit exposes the full verdict.
func (p *RequestPool) Add(r types.Request, now time.Duration) bool {
	return p.Admit(r, now).OK()
}

// client returns the per-client state, creating it if the state budget
// allows. At the cap, idle states (no live entries) are discarded wholesale
// — a deterministic set, so seeded simulations stay reproducible — and nil
// is returned only if every retained state still has live entries.
func (p *RequestPool) client(id uint64) *clientState {
	if c, ok := p.clients[id]; ok {
		return c
	}
	if len(p.clients) >= p.lim.MaxClients {
		for cid, c := range p.clients {
			if c.live == 0 {
				delete(p.clients, cid)
			}
		}
		if len(p.clients) >= p.lim.MaxClients {
			return nil
		}
	}
	c := &clientState{id: id}
	p.clients[id] = c
	return c
}

// Admit attempts to add a request at time now and returns the verdict.
func (p *RequestPool) Admit(r types.Request, now time.Duration) Verdict {
	v := p.admit(r, now)
	if v.OK() {
		p.stats.Admitted++
	} else {
		p.stats.Rejected++
		if v == RateLimited {
			p.stats.RateLimited++
		}
	}
	return v
}

func (p *RequestPool) admit(r types.Request, now time.Duration) Verdict {
	id := r.ID()
	if _, ok := p.byID[id]; ok {
		return DupLive
	}
	c := p.client(r.ClientID)
	if c == nil {
		return PoolFull
	}
	if c.init {
		if r.Seq < c.base {
			return StaleSeq
		}
		if _, ok := c.confirmed[r.Seq]; ok {
			return DupConfirmed
		}
	}
	if c.live >= p.lim.MaxPerClient {
		return ClientFull
	}
	if p.lim.RatePerSec > 0 && !p.takeToken(c, now) {
		return RateLimited
	}

	gapped := c.init && r.Seq > c.frontier+1
	size := r.Size()
	if !p.makeRoom(size, gapped) {
		return PoolFull
	}

	e := &entry{req: r, at: now, client: c}
	p.byID[id] = e
	c.live++
	p.bytes += size
	if gapped {
		e.queued = true
		e.elem = p.queued.PushBack(e)
		c.gapped[r.Seq] = e
		return AdmittedQueued
	}
	if !c.init {
		c.init = true
		c.base = r.Seq
		c.frontier = r.Seq
		c.confirmed = make(map[uint64]struct{})
		c.gapped = make(map[uint64]*entry)
	} else if r.Seq == c.frontier+1 {
		c.frontier = r.Seq
	}
	e.elem = p.pending.PushBack(e)
	p.promote(c)
	return Admitted
}

// takeToken refills and drains the client's token bucket. The bucket is
// primed full at its first use.
func (p *RequestPool) takeToken(c *clientState, now time.Duration) bool {
	burst := float64(p.lim.RateBurst)
	if !c.tokensInit {
		c.tokensInit = true
		c.tokens = burst
		c.lastRefill = now
	} else if now > c.lastRefill {
		c.tokens += (now - c.lastRefill).Seconds() * p.lim.RatePerSec
		if c.tokens > burst {
			c.tokens = burst
		}
		c.lastRefill = now
	}
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// makeRoom enforces the byte/count budgets for an arrival of the given
// size, evicting queued entries (the lowest-priority class) to admit a
// gap-free request. Victims are chosen biggest-footprint-first — freeing
// the most bytes per lost request — with ties broken toward the newest
// arrival, so under byte pressure a single fat straggler is sacrificed
// before a crowd of small ones. Pending entries are never evicted: a
// client's extractable in-flight head survives any amount of pressure.
// A gapped arrival never evicts: it would itself be among the pool's
// lowest-priority entries.
func (p *RequestPool) makeRoom(size int, gapped bool) bool {
	over := func() bool {
		return len(p.byID) >= p.lim.MaxRequests || p.bytes+size > p.lim.MaxBytes
	}
	if !over() {
		return true
	}
	if gapped {
		return false
	}
	for over() && p.queued.Len() > 0 {
		// Back-to-front with a strict > keeps the backmost (newest) of any
		// size tie, matching the old newest-first order when sizes are equal.
		victim := p.queued.Back().Value.(*entry)
		for el := p.queued.Back().Prev(); el != nil; el = el.Prev() {
			if e := el.Value.(*entry); e.req.Size() > victim.req.Size() {
				victim = e
			}
		}
		p.remove(victim)
		p.stats.Evicted++
	}
	return !over()
}

// promote moves the client's queued entries into pending for as long as the
// frontier extends through them (or through seqs confirmed out of order).
func (p *RequestPool) promote(c *clientState) {
	for {
		if e, ok := c.gapped[c.frontier+1]; ok {
			c.frontier++
			delete(c.gapped, c.frontier)
			p.queued.Remove(e.elem)
			e.queued = false
			e.elem = p.pending.PushBack(e)
			continue
		}
		if _, ok := c.confirmed[c.frontier+1]; ok {
			c.frontier++
			continue
		}
		return
	}
}

// remove unlinks a live entry entirely.
func (p *RequestPool) remove(e *entry) {
	if e.queued {
		p.queued.Remove(e.elem)
		delete(e.client.gapped, e.req.Seq)
	} else {
		p.pending.Remove(e.elem)
	}
	delete(p.byID, e.req.ID())
	e.client.live--
	p.bytes -= e.req.Size()
}

// Len returns the number of pending (extractable) requests.
func (p *RequestPool) Len() int { return p.pending.Len() }

// Queued returns the number of nonce-gapped requests awaiting promotion.
func (p *RequestPool) Queued() int { return p.queued.Len() }

// Bytes returns the total wire size of live (pending + queued) requests.
func (p *RequestPool) Bytes() int { return p.bytes }

// Stats returns the pool's admission counters.
func (p *RequestPool) Stats() PoolStats { return p.stats }

// Extract removes and returns up to max pending requests in priority order,
// along with the enqueue time of the oldest extracted request (zero when
// none). Extracted requests may be re-admitted until they confirm — that is
// how client retransmissions of in-flight requests are served.
func (p *RequestPool) Extract(max int) ([]types.Request, time.Duration) {
	if max <= 0 {
		return nil, 0
	}
	n := max
	if l := p.pending.Len(); l < n {
		n = l
	}
	if n == 0 {
		return nil, 0
	}
	var oldest time.Duration
	out := make([]types.Request, 0, n)
	for i := 0; i < n; i++ {
		e := p.pending.Front().Value.(*entry)
		p.remove(e)
		if i == 0 || e.at < oldest {
			oldest = e.at
		}
		out = append(out, e.req)
	}
	return out, oldest
}

// MarkConfirmed records that a request finished consensus: duplicates are
// rejected from then on, a live copy (confirmed via another replica's
// datablock) is dropped, and the client's consumed watermark advances.
// Per-client bookkeeping is bounded: contiguous confirmations fold into the
// base watermark, out-of-order ones live in a window of ConfirmedWindow
// seqs whose furthest-ahead entries are forgotten on overflow.
func (p *RequestPool) MarkConfirmed(id types.RequestID) {
	c := p.client(id.Client)
	if c == nil {
		return // state budget exhausted: rely on consensus-output dedup
	}
	if e, ok := p.byID[id]; ok {
		p.remove(e)
	}
	seq := id.Seq
	if !c.init {
		c.init = true
		c.base = seq + 1
		c.frontier = seq
		c.confirmed = make(map[uint64]struct{})
		c.gapped = make(map[uint64]*entry)
		return
	}
	if seq < c.base {
		return
	}
	if _, ok := c.confirmed[seq]; ok {
		return
	}
	if seq == c.base {
		c.base++
		for {
			if _, ok := c.confirmed[c.base]; !ok {
				break
			}
			delete(c.confirmed, c.base)
			c.base++
		}
	} else {
		if len(c.confirmed) >= p.lim.ConfirmedWindow {
			var maxSeq uint64
			for s := range c.confirmed {
				if s > maxSeq {
					maxSeq = s
				}
			}
			if seq > maxSeq {
				return // the newcomer is the furthest ahead: forget it
			}
			delete(c.confirmed, maxSeq)
		}
		c.confirmed[seq] = struct{}{}
	}
	if c.base > 0 && c.frontier < c.base-1 {
		c.frontier = c.base - 1
	}
	if seq == c.frontier+1 {
		c.frontier = seq
	}
	// No live entry can sit below base here: base advances only through
	// seqs that were individually confirmed, and each confirmation removed
	// its live copy above.
	p.promote(c)
}

// DatablockPool stores accepted datablocks, indexed both by digest and by
// (generator, counter) for duplicate-counter suppression (Leopard Alg. 1).
//
// Stored blocks may have been decoded zero-copy: their request payloads can
// sub-slice the wire frame (or erasure-decoded buffer) they arrived in, and
// retaining the block here is what keeps that buffer alive — the frame is
// essentially the block, so this pins no meaningful extra memory. The pool
// never mutates blocks, preserving the codec's borrow contract.
type DatablockPool struct {
	byHash map[types.Hash]*types.Datablock
	byRef  map[types.DatablockRef]types.Hash
}

// NewDatablockPool creates an empty pool.
func NewDatablockPool() *DatablockPool {
	return &DatablockPool{
		byHash: make(map[types.Hash]*types.Datablock),
		byRef:  make(map[types.DatablockRef]types.Hash),
	}
}

// Add stores the datablock under its digest. It reports false if a
// datablock with the same (generator, counter) or digest already exists.
func (p *DatablockPool) Add(h types.Hash, d *types.Datablock) bool {
	if _, ok := p.byHash[h]; ok {
		return false
	}
	if _, ok := p.byRef[d.Ref]; ok {
		return false
	}
	p.byHash[h] = d
	p.byRef[d.Ref] = h
	return true
}

// Get returns the datablock with digest h, if present.
func (p *DatablockPool) Get(h types.Hash) (*types.Datablock, bool) {
	d, ok := p.byHash[h]
	return d, ok
}

// Has reports whether digest h is present.
func (p *DatablockPool) Has(h types.Hash) bool {
	_, ok := p.byHash[h]
	return ok
}

// Remove deletes the datablock with digest h (garbage collection).
func (p *DatablockPool) Remove(h types.Hash) {
	if d, ok := p.byHash[h]; ok {
		delete(p.byRef, d.Ref)
		delete(p.byHash, h)
	}
}

// Len returns the number of stored datablocks.
func (p *DatablockPool) Len() int { return len(p.byHash) }

// Digests returns all stored digests in unspecified order; callers that
// need determinism must sort.
func (p *DatablockPool) Digests() []types.Hash {
	out := make([]types.Hash, 0, len(p.byHash))
	for h := range p.byHash {
		out = append(out, h)
	}
	return out
}
