// Package crypto provides hashing helpers and the threshold-signature Suite
// abstraction used by all protocols in this repository.
//
// The Leopard paper instantiates votes with threshold BLS (κ = 48 bytes).
// Pairing-based BLS is not implementable with the Go standard library, so
// this package offers two Suite implementations (see DESIGN.md §1):
//
//   - Ed25519Suite: a genuine (2f+1, n) aggregate multisignature built from
//     crypto/ed25519 (bitmap + concatenated signatures). Unforgeable and
//     publicly verifiable; used in unit tests and real TCP deployments.
//   - SimSuite: a deterministic keyed-MAC scheme with configurable wire
//     sizes, used by the large-scale network simulations where only the
//     *size* of votes/proofs affects the measured behaviour.
package crypto

import (
	"crypto/sha256"
	"encoding/binary"

	"leopard/internal/types"
)

// HashBytes returns the SHA-256 digest of data.
func HashBytes(data []byte) types.Hash {
	return sha256.Sum256(data)
}

// HashConcat hashes the concatenation of the given byte slices.
func HashConcat(parts ...[]byte) types.Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out types.Hash
	h.Sum(out[:0])
	return out
}

// HashRequest returns the digest of a request's identity and payload.
func HashRequest(r types.Request) types.Hash {
	h := sha256.New()
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], r.ClientID)
	h.Write(tmp[:])
	binary.BigEndian.PutUint64(tmp[:], r.Seq)
	h.Write(tmp[:])
	h.Write(r.Payload)
	var out types.Hash
	h.Sum(out[:0])
	return out
}

// HashDatablock returns the digest identifying a datablock.
func HashDatablock(d *types.Datablock) types.Hash {
	h := sha256.New()
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(d.Ref.Generator))
	h.Write(tmp[:4])
	binary.BigEndian.PutUint64(tmp[:], d.Ref.Counter)
	h.Write(tmp[:])
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(d.Requests)))
	h.Write(tmp[:4])
	for _, r := range d.Requests {
		rh := HashRequest(r)
		h.Write(rh[:])
	}
	var out types.Hash
	h.Sum(out[:0])
	return out
}

// HashBFTblock returns the digest of a BFTblock's identity-bearing fields.
func HashBFTblock(b *types.BFTblock) types.Hash {
	buf := make([]byte, 0, 20+32*len(b.Content))
	buf = b.AppendDigestInput(buf)
	return sha256.Sum256(buf)
}

// HashOfHash chains a digest, used for second-round votes on H(σ1).
func HashOfHash(h types.Hash) types.Hash {
	return sha256.Sum256(h[:])
}
