package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"leopard/internal/types"
)

// Paper parameters (§VI footnote 7): β = 32 B hashes, κ = 48 B threshold-BLS
// votes. SimSuite defaults to these wire sizes.
const (
	// SimShareSize is κ, the wire size of one vote share (threshold BLS).
	SimShareSize = 48
	// SimProofSize is the wire size of one combined proof (one BLS signature).
	SimProofSize = 48
)

// SimSuite is a fast deterministic Suite for large-scale simulations. Shares
// are truncated HMAC-SHA256 tags under per-replica keys derived from a
// common seed; the combined proof is a hash over the quorum's sorted shares.
// Verification recomputes tags, so the suite is *not* secure against a real
// adversary holding only public material — it exists so 600-replica sweeps
// spend their CPU on the network model, not on signatures, while keeping the
// paper's wire sizes (κ = 48 B) exact. Protocol-logic tests use Ed25519Suite.
type SimSuite struct {
	params    types.QuorumParams
	keys      [][]byte
	master    []byte
	shareSize int
	proofSize int
}

var _ Suite = (*SimSuite)(nil)

// SimOption configures a SimSuite.
type SimOption func(*SimSuite)

// WithShareSize overrides the share wire size (κ).
func WithShareSize(bytes int) SimOption {
	return func(s *SimSuite) { s.shareSize = bytes }
}

// WithProofSize overrides the combined-proof wire size.
func WithProofSize(bytes int) SimOption {
	return func(s *SimSuite) { s.proofSize = bytes }
}

// NewSimSuite creates a simulation suite for n replicas from a seed.
func NewSimSuite(n int, seed []byte, opts ...SimOption) (*SimSuite, error) {
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return nil, err
	}
	s := &SimSuite{
		params:    q,
		keys:      make([][]byte, n),
		shareSize: SimShareSize,
		proofSize: SimProofSize,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.shareSize < 8 || s.shareSize > sha256.Size+16 {
		return nil, fmt.Errorf("crypto: share size %d out of range [8, %d]", s.shareSize, sha256.Size+16)
	}
	for i := 0; i < n; i++ {
		h := sha256.New()
		h.Write(seed)
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		h.Write(idx[:])
		s.keys[i] = h.Sum(nil)
	}
	master := sha256.New()
	for _, k := range s.keys {
		master.Write(k)
	}
	s.master = master.Sum(nil)
	return s, nil
}

// Params implements Suite.
func (s *SimSuite) Params() types.QuorumParams { return s.params }

// ShareSize implements Suite.
func (s *SimSuite) ShareSize() int { return s.shareSize }

// ProofSize implements Suite.
func (s *SimSuite) ProofSize() int { return s.proofSize }

func (s *SimSuite) tag(signer types.ReplicaID, digest types.Hash) []byte {
	mac := hmac.New(sha256.New, s.keys[signer])
	mac.Write(digest[:])
	full := mac.Sum(nil)
	out := make([]byte, s.shareSize)
	// Pad by repeating the MAC when shareSize exceeds 32 bytes.
	for i := range out {
		out[i] = full[i%len(full)]
	}
	return out
}

// Sign implements Suite.
func (s *SimSuite) Sign(signer types.ReplicaID, digest types.Hash) (Share, error) {
	if int(signer) >= s.params.N {
		return Share{}, fmt.Errorf("%w: %d", ErrUnknownSigner, signer)
	}
	return Share{Signer: signer, Sig: s.tag(signer, digest)}, nil
}

// VerifyShare implements Suite.
func (s *SimSuite) VerifyShare(digest types.Hash, share Share) error {
	if int(share.Signer) >= s.params.N {
		return fmt.Errorf("%w: %d", ErrUnknownSigner, share.Signer)
	}
	if !hmac.Equal(share.Sig, s.tag(share.Signer, digest)) {
		return fmt.Errorf("%w: signer %d", ErrBadShare, share.Signer)
	}
	return nil
}

// Combine implements Suite. The proof binds the digest and the sorted quorum
// of signer ids so that VerifyProof can recompute it deterministically.
func (s *SimSuite) Combine(digest types.Hash, shares []Share) (Proof, error) {
	if err := dedupShares(s.params, shares); err != nil {
		return Proof{}, err
	}
	for _, sh := range shares {
		if err := s.VerifyShare(digest, sh); err != nil {
			return Proof{}, err
		}
	}
	return Proof{Sig: s.proofTag(digest)}, nil
}

// proofTag derives the canonical proof bytes for digest. The simulated
// scheme behaves like a unique threshold signature: any quorum yields the
// same proof, matching threshold BLS semantics.
func (s *SimSuite) proofTag(digest types.Hash) []byte {
	// Key the proof on the dealer master key so only the dealer's universe
	// verifies it.
	mac := hmac.New(sha256.New, s.master)
	mac.Write(digest[:])
	full := mac.Sum(nil)
	out := make([]byte, s.proofSize)
	for i := range out {
		out[i] = full[i%len(full)]
	}
	return out
}

// VerifyProof implements Suite.
func (s *SimSuite) VerifyProof(digest types.Hash, proof Proof) error {
	if !hmac.Equal(proof.Sig, s.proofTag(digest)) {
		return ErrBadProof
	}
	return nil
}
