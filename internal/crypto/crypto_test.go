package crypto

import (
	"errors"
	"testing"
	"testing/quick"

	"leopard/internal/types"
)

// suites returns both Suite implementations for shared conformance tests.
func suites(t *testing.T, n int) map[string]Suite {
	t.Helper()
	ed, err := NewEd25519Suite(n, []byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimSuite(n, []byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Suite{"ed25519": ed, "sim": sim}
}

func TestSuiteSignVerifyCombine(t *testing.T) {
	const n = 7
	digest := HashBytes([]byte("hello"))
	for name, s := range suites(t, n) {
		t.Run(name, func(t *testing.T) {
			q := s.Params()
			var shares []Share
			for i := 0; i < q.Quorum(); i++ {
				sh, err := s.Sign(types.ReplicaID(i), digest)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.VerifyShare(digest, sh); err != nil {
					t.Fatalf("share %d: %v", i, err)
				}
				shares = append(shares, sh)
			}
			proof, err := s.Combine(digest, shares)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.VerifyProof(digest, proof); err != nil {
				t.Fatal(err)
			}
			// A proof for one digest must not verify for another.
			other := HashBytes([]byte("other"))
			if err := s.VerifyProof(other, proof); err == nil {
				t.Fatal("proof verified for the wrong digest")
			}
		})
	}
}

func TestSuiteRejectsBadShares(t *testing.T) {
	const n = 4
	digest := HashBytes([]byte("msg"))
	for name, s := range suites(t, n) {
		t.Run(name, func(t *testing.T) {
			sh, err := s.Sign(0, digest)
			if err != nil {
				t.Fatal(err)
			}
			// Tampered signature bytes.
			bad := Share{Signer: sh.Signer, Sig: append([]byte(nil), sh.Sig...)}
			bad.Sig[0] ^= 0xff
			if err := s.VerifyShare(digest, bad); err == nil {
				t.Error("tampered share verified")
			}
			// Claimed wrong signer.
			imposter := Share{Signer: 1, Sig: sh.Sig}
			if err := s.VerifyShare(digest, imposter); err == nil {
				t.Error("share verified under the wrong signer")
			}
			// Unknown signer id.
			if _, err := s.Sign(types.ReplicaID(n), digest); err == nil {
				t.Error("signing with out-of-range id succeeded")
			}
			if err := s.VerifyShare(digest, Share{Signer: types.ReplicaID(n), Sig: sh.Sig}); err == nil {
				t.Error("verifying out-of-range signer succeeded")
			}
		})
	}
}

func TestCombineRequiresQuorum(t *testing.T) {
	const n = 7 // f=2, quorum=5
	digest := HashBytes([]byte("quorum"))
	for name, s := range suites(t, n) {
		t.Run(name, func(t *testing.T) {
			var shares []Share
			for i := 0; i < 4; i++ { // one short of quorum
				sh, _ := s.Sign(types.ReplicaID(i), digest)
				shares = append(shares, sh)
			}
			if _, err := s.Combine(digest, shares); !errors.Is(err, ErrNotEnoughShares) {
				t.Errorf("want ErrNotEnoughShares, got %v", err)
			}
			// Duplicates must not count toward the quorum.
			sh, _ := s.Sign(0, digest)
			dups := append(append([]Share(nil), shares...), sh)
			if _, err := s.Combine(digest, dups); err == nil {
				t.Error("combine with duplicate signer succeeded")
			}
		})
	}
}

func TestCombineRejectsInvalidShareInQuorum(t *testing.T) {
	const n = 4
	digest := HashBytes([]byte("poison"))
	for name, s := range suites(t, n) {
		t.Run(name, func(t *testing.T) {
			var shares []Share
			for i := 0; i < s.Params().Quorum(); i++ {
				sh, _ := s.Sign(types.ReplicaID(i), digest)
				shares = append(shares, sh)
			}
			shares[1].Sig[0] ^= 0x01 // poison one share
			if _, err := s.Combine(digest, shares); err == nil {
				t.Error("combine accepted a poisoned share")
			}
		})
	}
}

func TestEd25519ProofRejectsSubQuorumBitmap(t *testing.T) {
	s, err := NewEd25519Suite(4, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	digest := HashBytes([]byte("m"))
	var shares []Share
	for i := 0; i < 3; i++ {
		sh, _ := s.Sign(types.ReplicaID(i), digest)
		shares = append(shares, sh)
	}
	proof, err := s.Combine(digest, shares)
	if err != nil {
		t.Fatal(err)
	}
	// Clear one bitmap bit: now only 2 signers claimed.
	proof.Sig[0] &^= 1
	if err := s.VerifyProof(digest, proof); err == nil {
		t.Fatal("proof with sub-quorum bitmap verified")
	}
}

// TestEd25519ProofRejectsNonCanonicalBitmap is the regression test for
// stray bits above N in the final bitmap byte being silently ignored, which
// gave one digest many distinct "valid" proof encodings.
func TestEd25519ProofRejectsNonCanonicalBitmap(t *testing.T) {
	const n = 6 // bitmap is one byte, bits 6 and 7 name no signer
	s, err := NewEd25519Suite(n, []byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	digest := HashBytes([]byte("canonical"))
	var shares []Share
	for i := 0; i < s.Params().Quorum(); i++ {
		sh, err := s.Sign(types.ReplicaID(i), digest)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	proof, err := s.Combine(digest, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyProof(digest, proof); err != nil {
		t.Fatalf("canonical proof must verify: %v", err)
	}
	for _, stray := range []byte{1 << 6, 1 << 7, 1<<6 | 1<<7} {
		mutated := append([]byte(nil), proof.Sig...)
		mutated[0] |= stray
		err := s.VerifyProof(digest, Proof{Sig: mutated})
		if !errors.Is(err, ErrBadProof) {
			t.Errorf("bitmap with stray bits %08b accepted: %v", stray, err)
		}
	}
}

func TestSuiteSizes(t *testing.T) {
	ed, _ := NewEd25519Suite(4, []byte("s"))
	if ed.ShareSize() != 64 {
		t.Errorf("ed25519 share size = %d, want 64", ed.ShareSize())
	}
	sim, _ := NewSimSuite(4, []byte("s"))
	if sim.ShareSize() != SimShareSize || sim.ProofSize() != SimProofSize {
		t.Errorf("sim sizes = %d/%d, want %d/%d", sim.ShareSize(), sim.ProofSize(), SimShareSize, SimProofSize)
	}
	custom, err := NewSimSuite(4, []byte("s"), WithShareSize(16), WithProofSize(100))
	if err != nil {
		t.Fatal(err)
	}
	if custom.ShareSize() != 16 || custom.ProofSize() != 100 {
		t.Errorf("custom sizes not applied: %d/%d", custom.ShareSize(), custom.ProofSize())
	}
	sh, _ := custom.Sign(0, HashBytes([]byte("z")))
	if len(sh.Sig) != 16 {
		t.Errorf("share wire length = %d, want 16", len(sh.Sig))
	}
	if _, err := NewSimSuite(4, []byte("s"), WithShareSize(4)); err == nil {
		t.Error("absurdly small share size accepted")
	}
}

func TestSimSuiteDeterministicAcrossInstances(t *testing.T) {
	a, _ := NewSimSuite(4, []byte("shared-seed"))
	b, _ := NewSimSuite(4, []byte("shared-seed"))
	digest := HashBytes([]byte("d"))
	sh, err := a.Sign(2, digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyShare(digest, sh); err != nil {
		t.Fatal("share from one instance must verify at another with the same seed")
	}
	var shares []Share
	for i := 0; i < 3; i++ {
		s, _ := a.Sign(types.ReplicaID(i), digest)
		shares = append(shares, s)
	}
	proof, err := a.Combine(digest, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyProof(digest, proof); err != nil {
		t.Fatal("proof from one instance must verify at another with the same seed")
	}
}

func TestHashHelpersDistinguishInputs(t *testing.T) {
	r1 := types.Request{ClientID: 1, Seq: 2, Payload: []byte("a")}
	r2 := types.Request{ClientID: 1, Seq: 3, Payload: []byte("a")}
	if HashRequest(r1) == HashRequest(r2) {
		t.Error("requests with different seq must hash differently")
	}
	db1 := &types.Datablock{Ref: types.DatablockRef{Generator: 1, Counter: 1}, Requests: []types.Request{r1}}
	db2 := &types.Datablock{Ref: types.DatablockRef{Generator: 1, Counter: 2}, Requests: []types.Request{r1}}
	if HashDatablock(db1) == HashDatablock(db2) {
		t.Error("datablocks with different counters must hash differently")
	}
	b1 := &types.BFTblock{View: 1, Seq: 1, Content: []types.Hash{{1}}}
	b2 := &types.BFTblock{View: 1, Seq: 1, Content: []types.Hash{{2}}}
	if HashBFTblock(b1) == HashBFTblock(b2) {
		t.Error("BFTblocks with different content must hash differently")
	}
	if HashOfHash(types.Hash{1}) == HashOfHash(types.Hash{2}) {
		t.Error("hash chaining collision")
	}
}

// TestPropertyShareRoundTrip fuzzes digests through both suites.
func TestPropertyShareRoundTrip(t *testing.T) {
	ed, _ := NewEd25519Suite(4, []byte("fuzz"))
	sim, _ := NewSimSuite(4, []byte("fuzz"))
	check := func(data []byte, signerRaw uint8) bool {
		signer := types.ReplicaID(signerRaw % 4)
		digest := HashBytes(data)
		for _, s := range []Suite{ed, sim} {
			sh, err := s.Sign(signer, digest)
			if err != nil {
				return false
			}
			if err := s.VerifyShare(digest, sh); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEd25519Sign(b *testing.B) {
	s, _ := NewEd25519Suite(4, []byte("bench"))
	digest := HashBytes([]byte("benchmark"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(0, digest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimSign(b *testing.B) {
	s, _ := NewSimSuite(4, []byte("bench"))
	digest := HashBytes([]byte("benchmark"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(0, digest); err != nil {
			b.Fatal(err)
		}
	}
}
