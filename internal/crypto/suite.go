package crypto

import (
	"errors"
	"fmt"

	"leopard/internal/types"
)

// Errors returned by Suite implementations.
var (
	ErrBadShare        = errors.New("crypto: invalid signature share")
	ErrBadProof        = errors.New("crypto: invalid combined proof")
	ErrNotEnoughShares = errors.New("crypto: not enough shares to combine")
	ErrUnknownSigner   = errors.New("crypto: unknown signer id")
	ErrDuplicateSigner = errors.New("crypto: duplicate signer in share set")
)

// Share is one replica's threshold-signature share on a message digest.
type Share struct {
	Signer types.ReplicaID
	Sig    []byte
}

// Proof is a combined (2f+1)-threshold signature: the O(1) acknowledgment
// multicast after each voting round.
type Proof struct {
	Sig []byte
}

// Suite is the (2f+1, n)-threshold signature abstraction from the paper:
// TSig / TVrf (share) / TSR (combine) / TVrf (proof).
//
// Implementations must be safe for concurrent use.
type Suite interface {
	// Sign produces signer's share on digest.
	Sign(signer types.ReplicaID, digest types.Hash) (Share, error)
	// VerifyShare checks that share is valid for digest under the signer's key.
	VerifyShare(digest types.Hash, share Share) error
	// Combine aggregates at least Quorum() distinct valid shares into a proof.
	Combine(digest types.Hash, shares []Share) (Proof, error)
	// VerifyProof checks a combined proof for digest under the master key.
	VerifyProof(digest types.Hash, proof Proof) error
	// ShareSize returns the wire size in bytes of one share (κ in the paper).
	ShareSize() int
	// ProofSize returns the wire size in bytes of one combined proof.
	ProofSize() int
	// Params returns the quorum parameters the suite was set up for.
	Params() types.QuorumParams
}

// dedupShares validates that shares are from distinct known signers and
// returns them unchanged. Shared helper for Combine implementations.
func dedupShares(q types.QuorumParams, shares []Share) error {
	if len(shares) < q.Quorum() {
		return fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(shares), q.Quorum())
	}
	seen := make(map[types.ReplicaID]struct{}, len(shares))
	for _, s := range shares {
		if int(s.Signer) >= q.N {
			return fmt.Errorf("%w: %d", ErrUnknownSigner, s.Signer)
		}
		if _, dup := seen[s.Signer]; dup {
			return fmt.Errorf("%w: %d", ErrDuplicateSigner, s.Signer)
		}
		seen[s.Signer] = struct{}{}
	}
	return nil
}
