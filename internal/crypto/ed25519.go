package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"leopard/internal/types"
)

// Ed25519Suite implements Suite as a (2f+1, n) aggregate multisignature:
// each share is a real Ed25519 signature; the combined proof is a signer
// bitmap followed by the shares of the 2f+1 lowest-id signers. The proof is
// publicly verifiable against the per-replica public keys.
//
// This is the documented substitution for threshold BLS (see DESIGN.md §1):
// the interface contract — unforgeable shares, quorum-combined proofs,
// public verification — is preserved; only the proof wire size differs,
// which the simulations account for separately via SimSuite.
type Ed25519Suite struct {
	params types.QuorumParams
	pubs   []ed25519.PublicKey
	privs  []ed25519.PrivateKey // only the local replica's entry is non-nil in deployments
}

var _ Suite = (*Ed25519Suite)(nil)

// NewEd25519Suite runs a trusted-dealer setup for n replicas from a seed,
// returning a suite holding every key (convenient for tests and in-process
// clusters). Deployments should distribute keys and use NewEd25519Verifier.
func NewEd25519Suite(n int, seed []byte) (*Ed25519Suite, error) {
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return nil, err
	}
	s := &Ed25519Suite{
		params: q,
		pubs:   make([]ed25519.PublicKey, n),
		privs:  make([]ed25519.PrivateKey, n),
	}
	for i := 0; i < n; i++ {
		var keySeed [ed25519.SeedSize]byte
		h := sha256.New()
		h.Write(seed)
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		h.Write(idx[:])
		h.Sum(keySeed[:0])
		s.privs[i] = ed25519.NewKeyFromSeed(keySeed[:])
		s.pubs[i] = s.privs[i].Public().(ed25519.PublicKey)
	}
	return s, nil
}

// Params implements Suite.
func (s *Ed25519Suite) Params() types.QuorumParams { return s.params }

// ShareSize implements Suite: an Ed25519 signature is 64 bytes.
func (s *Ed25519Suite) ShareSize() int { return ed25519.SignatureSize }

// ProofSize implements Suite: bitmap + 2f+1 signatures.
func (s *Ed25519Suite) ProofSize() int {
	return (s.params.N+7)/8 + s.params.Quorum()*ed25519.SignatureSize
}

// Sign implements Suite.
func (s *Ed25519Suite) Sign(signer types.ReplicaID, digest types.Hash) (Share, error) {
	if int(signer) >= s.params.N || s.privs[signer] == nil {
		return Share{}, fmt.Errorf("%w: %d", ErrUnknownSigner, signer)
	}
	return Share{Signer: signer, Sig: ed25519.Sign(s.privs[signer], digest[:])}, nil
}

// VerifyShare implements Suite.
func (s *Ed25519Suite) VerifyShare(digest types.Hash, share Share) error {
	if int(share.Signer) >= s.params.N {
		return fmt.Errorf("%w: %d", ErrUnknownSigner, share.Signer)
	}
	if !ed25519.Verify(s.pubs[share.Signer], digest[:], share.Sig) {
		return fmt.Errorf("%w: signer %d", ErrBadShare, share.Signer)
	}
	return nil
}

// Combine implements Suite. Shares must be valid; Combine re-checks them so
// a faulty vote cannot poison the aggregate.
func (s *Ed25519Suite) Combine(digest types.Hash, shares []Share) (Proof, error) {
	if err := dedupShares(s.params, shares); err != nil {
		return Proof{}, err
	}
	sorted := make([]Share, len(shares))
	copy(sorted, shares)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Signer < sorted[j].Signer })
	sorted = sorted[:s.params.Quorum()]

	bitmapLen := (s.params.N + 7) / 8
	out := make([]byte, bitmapLen, bitmapLen+len(sorted)*ed25519.SignatureSize)
	for _, sh := range sorted {
		if err := s.VerifyShare(digest, sh); err != nil {
			return Proof{}, err
		}
		out[int(sh.Signer)/8] |= 1 << (uint(sh.Signer) % 8)
		out = append(out, sh.Sig...)
	}
	return Proof{Sig: out}, nil
}

// VerifyProof implements Suite.
func (s *Ed25519Suite) VerifyProof(digest types.Hash, proof Proof) error {
	bitmapLen := (s.params.N + 7) / 8
	if len(proof.Sig) < bitmapLen {
		return fmt.Errorf("%w: truncated bitmap", ErrBadProof)
	}
	bitmap, sigs := proof.Sig[:bitmapLen], proof.Sig[bitmapLen:]
	// Reject stray bits above N in the final bitmap byte: they name no
	// signer, so ignoring them would give one digest many distinct "valid"
	// proof encodings, breaking proof canonicity (anything keyed or
	// deduplicated by proof bytes could be split by an adversary re-serving
	// the same proof under fresh encodings).
	if rem := s.params.N % 8; rem != 0 {
		if bitmap[bitmapLen-1]&^byte(1<<rem-1) != 0 {
			return fmt.Errorf("%w: non-canonical bitmap bits above signer %d", ErrBadProof, s.params.N-1)
		}
	}
	var signers []types.ReplicaID
	for i := 0; i < s.params.N; i++ {
		if bitmap[i/8]&(1<<(uint(i)%8)) != 0 {
			signers = append(signers, types.ReplicaID(i))
		}
	}
	if len(signers) < s.params.Quorum() {
		return fmt.Errorf("%w: %d signers below quorum %d", ErrBadProof, len(signers), s.params.Quorum())
	}
	if len(sigs) != len(signers)*ed25519.SignatureSize {
		return fmt.Errorf("%w: signature block length mismatch", ErrBadProof)
	}
	for i, id := range signers {
		sig := sigs[i*ed25519.SignatureSize : (i+1)*ed25519.SignatureSize]
		if !ed25519.Verify(s.pubs[id], digest[:], sig) {
			return fmt.Errorf("%w: signer %d", ErrBadProof, id)
		}
	}
	return nil
}
